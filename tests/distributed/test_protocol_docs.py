"""Lockstep: every protocol message type and constant appears in docs.

``docs/protocol.md`` is the normative spec of the wire protocol.  This
test walks the actual module — every public dataclass (message type),
every public module-level constant, and the wire error type — and asserts
each name appears in the document, so adding a message without specifying
it fails CI.  (The doc going stale the *other* way — describing messages
that no longer exist — would show up as dead names in this same sweep
whenever they are renamed rather than removed, and in review.)
"""

import dataclasses
import inspect
from pathlib import Path

from repro.distributed import protocol

DOC_PATH = Path(__file__).resolve().parents[2] / "docs" / "protocol.md"


def _message_types() -> list[str]:
    return [
        name
        for name, obj in vars(protocol).items()
        if inspect.isclass(obj)
        and dataclasses.is_dataclass(obj)
        and obj.__module__ == protocol.__name__
    ]


def _public_constants() -> list[str]:
    return [
        name
        for name, obj in vars(protocol).items()
        if name.isupper()
        and not name.startswith("_")
        and not inspect.isclass(obj)
        and not inspect.isfunction(obj)
    ]


def test_doc_exists():
    assert DOC_PATH.is_file(), f"normative protocol spec missing: {DOC_PATH}"


def test_every_message_type_is_documented():
    text = DOC_PATH.read_text(encoding="utf-8")
    messages = _message_types()
    # The protocol grew past v1: the sweep must see the scheduler messages.
    assert {"StealRequest", "TaskStream", "JoinRun"} <= set(messages)
    missing = [name for name in messages if name not in text]
    assert not missing, (
        f"message types defined in protocol.py but absent from "
        f"docs/protocol.md: {missing}"
    )


def test_every_public_constant_is_documented():
    text = DOC_PATH.read_text(encoding="utf-8")
    constants = _public_constants()
    assert {"MAGIC", "PROTOCOL_VERSION", "PREAMBLE", "MAX_FRAME_BYTES"} <= set(
        constants
    )
    missing = [name for name in constants if name not in text]
    assert not missing, (
        f"constants defined in protocol.py but absent from "
        f"docs/protocol.md: {missing}"
    )


def test_wire_error_is_documented():
    assert "WireError" in DOC_PATH.read_text(encoding="utf-8")


def test_documented_version_matches_code():
    text = DOC_PATH.read_text(encoding="utf-8")
    assert f"Protocol version: **{protocol.PROTOCOL_VERSION}**" in text
    assert f"revision **{protocol.PROTOCOL_REVISION}**" in text
