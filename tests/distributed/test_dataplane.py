"""Artifact data plane: dedup, spool/socket transports, read-only views."""

import numpy as np
import pytest

from repro.distributed.dataplane import (
    ArtifactCache,
    ArtifactPlane,
    decode_artifact,
    dumps,
    loads,
)
from repro.utils.errors import MapReduceError


@pytest.fixture
def plane(tmp_path):
    plane = ArtifactPlane(tmp_path / "spool", run_id="runX", min_bytes=1024)
    yield plane
    plane.close()


def no_fetch(name):  # a resolver transport that must not be used
    raise AssertionError(f"unexpected socket fetch of {name!r}")


class TestPlaneRegistration:
    def test_same_array_registers_once(self, plane):
        array = np.arange(4096, dtype=np.float64)
        ref1 = plane.register(array)
        ref2 = plane.register(array)
        assert ref1 == ref2
        assert plane.n_artifacts == 1

    def test_distinct_arrays_get_distinct_artifacts(self, plane):
        a = np.arange(4096, dtype=np.float64)
        b = np.arange(4096, dtype=np.float64)  # equal values, distinct object
        assert plane.register(a) != plane.register(b)
        assert plane.n_artifacts == 2

    def test_eligibility(self, plane):
        assert plane.eligible(np.zeros(4096))
        assert not plane.eligible(np.zeros(4))  # below min_bytes
        assert not plane.eligible("not an array")
        assert not plane.eligible(np.array([object()], dtype=object))

    def test_close_removes_spool_files_idempotently(self, tmp_path):
        plane = ArtifactPlane(tmp_path, run_id="r", min_bytes=1)
        plane.register(np.arange(100))
        files = list(tmp_path.glob("*.npy"))
        assert len(files) == 1
        plane.close()
        plane.close()
        assert list(tmp_path.glob("*.npy")) == []
        with pytest.raises(MapReduceError):
            plane.register(np.arange(100))

    def test_non_contiguous_arrays_round_trip(self, plane, tmp_path):
        base = np.arange(10000, dtype=np.float64).reshape(100, 100)
        strided = base[::2, ::3]
        payload = dumps({"x": strided}, plane)
        cache = ArtifactCache()
        out = loads(payload, lambda ref: cache.resolve(ref, no_fetch))
        assert np.array_equal(out["x"], strided)


class TestRoundTrip:
    def test_spool_transport_preferred_and_cached(self, plane):
        big = np.random.default_rng(0).normal(size=5000)  # 40 KB
        payloads = [dumps((i, big), plane) for i in range(4)]
        cache = ArtifactCache()
        resolver = lambda ref: cache.resolve(ref, no_fetch)  # noqa: E731
        for i, payload in enumerate(payloads):
            index, array = loads(payload, resolver)
            assert index == i
            assert np.array_equal(array, big)
        # One artifact, memory-mapped once, never fetched over the socket.
        assert plane.n_artifacts == 1
        assert cache.n_mapped == 1
        assert cache.n_fetched == 0
        assert len(cache) == 1

    def test_socket_fallback_fetches_once(self, plane):
        big = np.arange(4096, dtype=np.float64)
        payloads = [dumps((i, big), plane) for i in range(3)]
        # Break the spool path (the worker is on another host).
        fetched = []

        def resolver(ref):
            name, dtype, shape, _path, digest = ref
            broken = (name, dtype, shape, "/nonexistent/spool/gone.npy", digest)

            def fetch(artifact_name):
                fetched.append(artifact_name)
                return plane.payload(artifact_name)

            return cache.resolve(broken, fetch)

        cache = ArtifactCache()
        for payload in payloads:
            _i, array = loads(payload, resolver)
            assert np.array_equal(array, big)
        assert fetched == [plane.register(big)[0]]  # exactly one fetch
        assert cache.n_fetched == 1

    def test_resolved_arrays_are_read_only(self, plane):
        big = np.arange(4096, dtype=np.float64)
        payload = dumps(big, plane)
        cache = ArtifactCache()
        spooled = loads(payload, lambda ref: cache.resolve(ref, no_fetch))
        with pytest.raises(ValueError):
            spooled[0] = 99.0
        fetched = decode_artifact(plane.payload(plane.register(big)[0]))
        with pytest.raises(ValueError):
            fetched[0] = 99.0

    def test_small_arrays_stay_inline(self, plane):
        small = np.arange(8, dtype=np.float64)  # 64 bytes < min_bytes
        payload = dumps(small, plane)
        out = loads(payload, no_fetch)  # resolver never consulted
        assert np.array_equal(out, small)
        assert plane.n_artifacts == 0

    def test_shape_dtype_mismatch_rejected(self, plane):
        big = np.arange(4096, dtype=np.float64)
        name, _dtype, _shape, path, digest = plane.register(big)
        cache = ArtifactCache()
        with pytest.raises(MapReduceError, match="reference says"):
            cache.resolve((name, "<f8", (7,), path, digest), no_fetch)

    def test_reference_carries_spool_checksum(self, plane):
        big = np.arange(4096, dtype=np.float64)
        name, _dtype, _shape, _path, digest = plane.register(big)
        import hashlib

        assert digest == hashlib.sha256(plane.payload(name)).hexdigest()
        assert plane.checksum(name) == digest
        with pytest.raises(MapReduceError, match="unknown artifact"):
            plane.checksum("never-registered")

    def test_unknown_artifact_payload_rejected(self, plane):
        with pytest.raises(MapReduceError, match="unknown artifact"):
            plane.payload("never-registered")


class TestCorruption:
    """Damaged transports must end in recovery or a typed error — never
    silently wrong bytes (the failure model of ``docs/ARCHITECTURE.md``)."""

    @staticmethod
    def _registered(plane):
        big = np.arange(4096, dtype=np.float64)
        return big, plane.register(big)

    def test_truncated_spool_file_falls_back_to_socket(self, plane):
        big, ref = self._registered(plane)
        name, _dtype, _shape, path, _digest = ref
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        cache = ArtifactCache()
        fetched = []

        def fetch(artifact_name):
            fetched.append(artifact_name)
            return data

        out = cache.resolve(ref, fetch)
        assert np.array_equal(out, big)
        assert fetched == [name]
        assert cache.n_fetched == 1 and cache.n_mapped == 0

    def test_truncated_spool_and_lost_socket_is_typed(self, plane):
        from repro.distributed.protocol import WireError

        _big, ref = self._registered(plane)
        _name, _dtype, _shape, path, _digest = ref
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])

        def fetch(_name):
            raise WireError("connection lost while receiving")

        cache = ArtifactCache()
        with pytest.raises(MapReduceError, match="materialized intact") as err:
            cache.resolve(ref, fetch)
        # The error names both legs: the unusable spool and each attempt.
        assert "spool" in str(err.value)
        assert "fetch attempt 3" in str(err.value)

    def test_bit_flipped_socket_bytes_retried_until_clean(self, plane):
        big, ref = self._registered(plane)
        name = ref[0]
        broken = (ref[0], ref[1], ref[2], "", ref[4])  # force socket path
        good = plane.payload(name)
        flipped = bytearray(good)
        flipped[len(flipped) // 2] ^= 0x40  # one bit, data region
        replies = [bytes(flipped), good]

        def fetch(_name):
            return replies.pop(0)

        cache = ArtifactCache()
        out = cache.resolve(broken, fetch)
        assert np.array_equal(out, big)
        assert replies == []  # corrupt reply consumed, then re-fetched

    def test_persistent_corruption_is_typed_not_silent(self, plane):
        _big, ref = self._registered(plane)
        broken = (ref[0], ref[1], ref[2], "", ref[4])
        good = plane.payload(ref[0])
        flipped = bytearray(good)
        flipped[-1] ^= 0x01

        cache = ArtifactCache()
        with pytest.raises(MapReduceError, match="checksum mismatch"):
            cache.resolve(broken, lambda _n: bytes(flipped))

    def test_stale_run_reply_fails_fast_without_retry(self, plane):
        _big, ref = self._registered(plane)
        broken = (ref[0], ref[1], ref[2], "", ref[4])
        calls = []

        def fetch(name):
            calls.append(name)
            raise MapReduceError(f"artifact {name!r} belongs to a finished run")

        cache = ArtifactCache()
        with pytest.raises(MapReduceError, match="finished run"):
            cache.resolve(broken, fetch)
        assert len(calls) == 1  # permanent refusal: no pointless retries


class TestCacheLifecycle:
    def test_clear_by_run_id(self):
        cache = ArtifactCache()
        cache._arrays["runA-a00000"] = np.zeros(1)
        cache._arrays["runB-a00000"] = np.zeros(1)
        cache.clear("runA")
        assert list(cache._arrays) == ["runB-a00000"]
        cache.clear()
        assert len(cache) == 0
