"""Round-trip fidelity of the on-disk index format.

The contract: ``CorpusIndex.load(path)`` after ``index.save(path)`` restores
every function, feature mask, threshold and stat bit-identically, answers
queries exactly like the original index (serial and threaded), and the
on-disk array bytes reconcile with the §5.4 ``IndexStats`` accounting.
"""

import json

import numpy as np

from repro.core.corpus import CorpusIndex
from repro.mapreduce.engine import LocalEngine
from repro.persist import (
    FORMAT_NAME,
    FORMAT_VERSION,
    INDEX_MANIFEST,
    PARTITION_DIR,
    disk_usage,
    read_partition,
    write_partition,
)
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution


def assert_indexes_equal(index1, index2):
    """Every persisted field of the two indexes must match exactly."""
    assert list(index1.datasets) == list(index2.datasets)
    for name, ds1 in index1.datasets.items():
        ds2 = index2.datasets[name]
        assert list(ds1.functions) == list(ds2.functions)
        for key, fns1 in ds1.functions.items():
            fns2 = ds2.functions[key]
            assert [f.function_id for f in fns1] == [f.function_id for f in fns2]
            for f1, f2 in zip(fns1, fns2):
                assert f1.function.dataset == f2.function.dataset
                assert f1.function.spatial is f2.function.spatial
                assert f1.function.temporal is f2.function.temporal
                assert np.array_equal(f1.function.values, f2.function.values)
                assert np.array_equal(
                    f1.function.graph.step_labels, f2.function.graph.step_labels
                )
                assert np.array_equal(
                    f1.function.graph.spatial_pairs, f2.function.graph.spatial_pairs
                )
                for feature_type in ("salient", "extreme"):
                    s1 = f1.feature_set(feature_type)
                    s2 = f2.feature_set(feature_type)
                    assert np.array_equal(s1.positive, s2.positive)
                    assert np.array_equal(s1.negative, s2.negative)
                assert f1.features.extreme_theta_pos == f2.features.extreme_theta_pos
                assert f1.features.extreme_theta_neg == f2.features.extreme_theta_neg
                assert len(f1.features.intervals) == len(f2.features.intervals)
                for iv1, iv2 in zip(f1.features.intervals, f2.features.intervals):
                    assert (iv1.step_start, iv1.step_stop) == (
                        iv2.step_start,
                        iv2.step_stop,
                    )
                    assert (iv1.n_maxima, iv1.n_minima) == (iv2.n_maxima, iv2.n_minima)
                    assert iv1.thresholds.theta_pos == iv2.thresholds.theta_pos
                    assert iv1.thresholds.theta_neg == iv2.thresholds.theta_neg
                    assert np.array_equal(
                        iv1.thresholds.salient_max_values,
                        iv2.thresholds.salient_max_values,
                    )
                    assert np.array_equal(
                        iv1.thresholds.salient_min_values,
                        iv2.thresholds.salient_min_values,
                    )


def assert_query_results_equal(r1, r2):
    assert (r1.n_evaluated, r1.n_candidates, r1.n_significant) == (
        r2.n_evaluated,
        r2.n_candidates,
        r2.n_significant,
    )
    rows1 = [
        (x.function1, x.function2, x.feature_type, x.score, x.strength,
         x.p_value, x.n_related, x.precision, x.recall)
        for x in r1.results
    ]
    rows2 = [
        (x.function1, x.function2, x.feature_type, x.score, x.strength,
         x.p_value, x.n_related, x.precision, x.recall)
        for x in r2.results
    ]
    assert rows1 == rows2


class TestRoundTrip:
    def test_load_restores_index_bit_identically(self, built_index, index_dir):
        loaded = CorpusIndex.load(index_dir)
        assert_indexes_equal(built_index, loaded)

    def test_stats_and_context_survive(self, built_index, index_dir):
        loaded = CorpusIndex.load(index_dir)
        assert loaded.stats == built_index.stats
        assert loaded.corpus is None  # raw data is not part of the format
        assert loaded.fill == built_index.fill
        original = built_index.extractor
        assert loaded.extractor.seasonal == original.seasonal
        assert loaded.extractor.use_index == original.use_index
        assert loaded.extractor.extreme_fence == original.extreme_fence
        assert loaded.extractor.max_feature_fraction == original.max_feature_fraction
        assert loaded.city.name == built_index.city.name
        assert (
            loaded.city.available_resolutions()
            == built_index.city.available_resolutions()
        )

    def test_loaded_query_bit_identical_serial_and_parallel(
        self, built_index, index_dir
    ):
        loaded = CorpusIndex.load(index_dir)
        fresh = built_index.query(n_permutations=40, seed=0)
        serial = loaded.query(n_permutations=40, seed=0)
        threaded = loaded.query(
            n_permutations=40, seed=0, n_workers=3, executor="thread"
        )
        assert_query_results_equal(fresh, serial)
        assert_query_results_equal(fresh, threaded)
        assert fresh.n_evaluated > 0

    def test_save_and_load_through_thread_engine(self, built_index, tmp_path):
        built_index.save(tmp_path, n_workers=3, executor="thread")
        loaded = CorpusIndex.load(tmp_path, n_workers=3, executor="thread")
        assert_indexes_equal(built_index, loaded)
        assert loaded.job_stats is not None
        assert loaded.job_stats.n_map_chunks >= 1

    def test_explicit_engine_override(self, built_index, tmp_path):
        engine = LocalEngine(n_workers=2, executor="thread", map_chunk_size=2)
        built_index.save(tmp_path, engine=engine)
        loaded = CorpusIndex.load(tmp_path, engine=engine)
        assert_indexes_equal(built_index, loaded)

    def test_save_and_load_through_process_engine(self, built_index, tmp_path):
        """Persist jobs must pickle cleanly into worker processes, and the
        round trip must stay bit-identical — including follow-up queries."""
        from repro.mapreduce import shm

        built_index.save(tmp_path, n_workers=2, executor="process")
        loaded = CorpusIndex.load(tmp_path, n_workers=2, executor="process")
        assert_indexes_equal(built_index, loaded)
        fresh = built_index.query(n_permutations=40, seed=0)
        processed = loaded.query(
            n_permutations=40, seed=0, n_workers=2, executor="process"
        )
        assert_query_results_equal(fresh, processed)
        assert shm.live_segments() == frozenset()

    def test_save_and_load_through_cluster_engine(
        self, built_index, tmp_path, cluster_engine
    ):
        """Persist jobs run on real cluster workers (separate OS processes
        over TCP): partition files land where the caller asked despite the
        workers' different working directory, and the round trip — plus a
        follow-up query on the cluster — stays bit-identical."""
        built_index.save(tmp_path / "idx", engine=cluster_engine)
        loaded = CorpusIndex.load(tmp_path / "idx", engine=cluster_engine)
        assert_indexes_equal(built_index, loaded)
        fresh = built_index.query(n_permutations=40, seed=0)
        clustered = loaded.query(n_permutations=40, seed=0, engine=cluster_engine)
        assert_query_results_equal(fresh, clustered)
        # No artifact spool files survive the runs.
        assert list(cluster_engine.coordinator.spool_dir.glob("*.npy")) == []

    def test_persist_jobs_pickle_roundtrip(self, tmp_path):
        """The save/load jobs themselves survive pickling (process workers
        receive them by value inside every task payload)."""
        import pickle

        from repro.persist.index_io import PartitionLoadJob, PartitionSaveJob

        for job in (PartitionSaveJob(tmp_path), PartitionLoadJob(tmp_path)):
            clone = pickle.loads(pickle.dumps(job))
            assert type(clone) is type(job)
            assert clone.directory == job.directory


class TestOnDiskLayout:
    def test_manifest_structure(self, built_index, index_dir):
        manifest = json.loads((index_dir / INDEX_MANIFEST).read_text())
        assert manifest["format"] == FORMAT_NAME
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["datasets"] == list(built_index.datasets)
        n_partitions = sum(len(ds.functions) for ds in built_index.datasets.values())
        assert len(manifest["partitions"]) == n_partitions
        for record in manifest["partitions"]:
            path = index_dir / record["file"]
            assert path.is_file()
            assert path.stat().st_size == record["nbytes"]
            assert len(record["sha256"]) == 64

    def test_v2_manifest_carries_fingerprints_and_partition_stats(
        self, built_index, index_dir
    ):
        """Format v2: every partition record holds a content fingerprint and
        its own IndexStats contribution; the manifest holds the config/city
        digests — the reuse evidence `repro update` plans from."""
        manifest = json.loads((index_dir / INDEX_MANIFEST).read_text())
        assert set(manifest["fingerprints"]) == {"config", "city"}
        partition_totals = {"n_scalar_functions": 0, "function_bytes": 0}
        for record in manifest["partitions"]:
            assert len(record["fingerprint"]) == 64
            for counter in partition_totals:
                partition_totals[counter] += record["stats"][counter]
        # Partition stats sum back to the whole-index counters.
        assert (
            partition_totals["n_scalar_functions"]
            == built_index.stats.n_scalar_functions
        )
        assert partition_totals["function_bytes"] == built_index.stats.function_bytes

    def test_v2_bookkeeping_survives_load_and_resave(
        self, built_index, index_dir, tmp_path
    ):
        loaded = CorpusIndex.load(index_dir)
        assert loaded.partition_fingerprints == built_index.partition_fingerprints
        assert set(loaded.partition_stats) == set(built_index.partition_stats)
        # A loaded index re-saves with its reuse evidence intact.
        loaded.save(tmp_path / "again")
        manifest = json.loads((tmp_path / "again" / INDEX_MANIFEST).read_text())
        for record in manifest["partitions"]:
            assert "fingerprint" in record and "stats" in record

    def test_build_scope_is_recorded_and_survives_roundtrip(
        self, built_index, index_dir
    ):
        """The resolution whitelists an index was built with are part of
        the manifest, so `repro update` maintains the *requested* scope —
        not a reconstruction from whatever partitions survive."""
        manifest = json.loads((index_dir / INDEX_MANIFEST).read_text())
        assert manifest["scope"] == {
            "spatial": ["city", "neighborhood"],
            "temporal": ["day", "hour"],
        }
        loaded = CorpusIndex.load(index_dir)
        assert loaded.scope == manifest["scope"]

    def test_partition_files_are_byte_deterministic(self, built_index, tmp_path):
        """Same content, same bytes: the property that lets incremental
        updates be compared bit-for-bit against from-scratch rebuilds."""
        built_index.save(tmp_path / "a")
        built_index.save(tmp_path / "b")
        manifest = json.loads((tmp_path / "a" / INDEX_MANIFEST).read_text())
        assert manifest["partitions"], "fixture index must have partitions"
        for record in manifest["partitions"]:
            assert (tmp_path / "a" / record["file"]).read_bytes() == (
                tmp_path / "b" / record["file"]
            ).read_bytes()

    def test_disk_usage_reconciles_with_index_stats(self, built_index, index_dir):
        usage = disk_usage(index_dir)
        # Arrays are stored uncompressed, so the §5.4 counters must match
        # the on-disk payload byte for byte.
        assert usage.function_bytes == built_index.stats.function_bytes
        assert usage.feature_bytes == built_index.stats.feature_bytes
        assert usage.total_bytes > usage.function_bytes + usage.feature_bytes

    def test_resave_removes_stale_partitions(self, built_index, tmp_path):
        target = tmp_path / "idx"
        built_index.save(target)
        stale = target / PARTITION_DIR / "p9999_stale_city_day.npz"
        stale.write_bytes(b"leftover")
        built_index.save(target)
        assert not stale.exists()
        manifest = json.loads((target / INDEX_MANIFEST).read_text())
        on_disk = sorted(p.name for p in (target / PARTITION_DIR).glob("*.npz"))
        listed = sorted(r["file"].split("/")[-1] for r in manifest["partitions"])
        assert on_disk == listed
        # The atomic swap must not leave staging/retired siblings behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["idx"]

    def test_save_into_fresh_nested_directory(self, built_index, tmp_path):
        target = tmp_path / "a" / "b" / "idx"
        manifest_path = built_index.save(target)
        assert manifest_path == target / INDEX_MANIFEST
        assert_indexes_equal(built_index, CorpusIndex.load(target))


class TestPartitionLevel:
    def test_single_partition_roundtrip(self, built_index, tmp_path):
        """The partition file is the IndexPartitionJob-aligned unit."""
        name, ds_index = next(iter(built_index.datasets.items()))
        (spatial, temporal), functions = next(iter(ds_index.functions.items()))
        path = tmp_path / "part.npz"
        record = write_partition(path, functions)
        assert len(record["functions"]) == len(functions)
        restored = read_partition(path, record, spatial, temporal)
        assert [f.function_id for f in restored] == [f.function_id for f in functions]
        for original, loaded in zip(functions, restored):
            assert np.array_equal(original.function.values, loaded.function.values)
            assert np.array_equal(
                original.features.salient.positive, loaded.features.salient.positive
            )

    def test_empty_partition_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        record = write_partition(path, [])
        assert record["functions"] == []
        assert record["bytes"] == {
            "function": 0,
            "feature": 0,
            "threshold": 0,
            "structure": 0,
        }
        assert read_partition(
            path, record, SpatialResolution.CITY, TemporalResolution.DAY
        ) == []
