"""Corrupt and mismatched index files must fail with clear library errors.

Every failure mode — missing manifest, truncated JSON, foreign or
version-mismatched formats, tampered payloads, checksum mismatches, missing
partition files — raises :class:`repro.utils.errors.PersistError` with a
descriptive message, never a raw ``json``/``numpy``/``zipfile`` traceback.
"""

import json
import shutil

import pytest

from repro.core.corpus import CorpusIndex
from repro.persist import INDEX_MANIFEST, disk_usage
from repro.persist.format import manifest_digest
from repro.utils.errors import PersistError, ReproError


@pytest.fixture()
def broken_dir(index_dir, tmp_path):
    """A private, mutable copy of the pristine saved index."""
    target = tmp_path / "copy"
    shutil.copytree(index_dir, target)
    return target


def _rewrite_manifest(directory, mutate):
    """Apply ``mutate`` to the manifest payload and re-sign the digest.

    Used to corrupt *verified* content (partition records, stats) without
    tripping the outer manifest-integrity check first.
    """
    path = directory / INDEX_MANIFEST
    manifest = json.loads(path.read_text())
    manifest.pop("manifest_sha256")
    mutate(manifest)
    manifest["manifest_sha256"] = manifest_digest(manifest)
    path.write_text(json.dumps(manifest))


class TestManifestFailures:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistError, match="no index.json"):
            CorpusIndex.load(tmp_path / "nowhere")

    def test_missing_manifest(self, broken_dir):
        (broken_dir / INDEX_MANIFEST).unlink()
        with pytest.raises(PersistError, match="no index.json"):
            CorpusIndex.load(broken_dir)

    def test_truncated_manifest(self, broken_dir):
        path = broken_dir / INDEX_MANIFEST
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistError, match="truncated or corrupt") as excinfo:
            CorpusIndex.load(broken_dir)
        # The error must name the offending file and chain the parser's own
        # diagnosis (line/column), not swallow it.
        assert str(path) in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, json.JSONDecodeError)

    def test_non_json_manifest(self, broken_dir):
        (broken_dir / INDEX_MANIFEST).write_text("definitely { not json")
        with pytest.raises(PersistError, match="truncated or corrupt"):
            CorpusIndex.load(broken_dir)

    def test_foreign_format_rejected(self, broken_dir):
        path = broken_dir / INDEX_MANIFEST
        manifest = json.loads(path.read_text())
        manifest["format"] = "somebody-elses-index"
        path.write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="not a repro-corpus-index"):
            CorpusIndex.load(broken_dir)

    def test_wrong_format_version_rejected(self, broken_dir):
        path = broken_dir / INDEX_MANIFEST
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="unsupported index format version"):
            CorpusIndex.load(broken_dir)

    def test_undecodable_manifest_chains_cause(self, broken_dir):
        # Binary garbage where the manifest should be: the decode error is
        # chained, the message still says truncated-or-corrupt.
        path = broken_dir / INDEX_MANIFEST
        path.write_bytes(b"\xff\xfe\x00garbage\x80")
        with pytest.raises(PersistError, match="truncated or corrupt") as excinfo:
            CorpusIndex.load(broken_dir)
        assert isinstance(excinfo.value.__cause__, UnicodeDecodeError)

    def test_tampered_payload_fails_integrity_check(self, broken_dir):
        path = broken_dir / INDEX_MANIFEST
        manifest = json.loads(path.read_text())
        manifest["stats"]["function_bytes"] = 0  # digest no longer matches
        path.write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="integrity check failed"):
            CorpusIndex.load(broken_dir)

    def test_malformed_stats_record(self, broken_dir):
        _rewrite_manifest(
            broken_dir, lambda m: m["stats"].update({"no_such_counter": 1})
        )
        with pytest.raises(PersistError, match="malformed stats record"):
            CorpusIndex.load(broken_dir)

    def test_malformed_extractor_record(self, broken_dir):
        _rewrite_manifest(broken_dir, lambda m: m["extractor"].pop("seasonal"))
        with pytest.raises(PersistError, match="malformed extractor record"):
            CorpusIndex.load(broken_dir)


class TestPartitionFailures:
    @staticmethod
    def _first_partition(directory):
        manifest = json.loads((directory / INDEX_MANIFEST).read_text())
        return directory / manifest["partitions"][0]["file"]

    def test_missing_partition_file(self, broken_dir):
        self._first_partition(broken_dir).unlink()
        with pytest.raises(PersistError, match="missing partition file"):
            CorpusIndex.load(broken_dir)

    def test_checksum_mismatch(self, broken_dir):
        path = self._first_partition(broken_dir)
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(PersistError, match="checksum mismatch"):
            CorpusIndex.load(broken_dir)

    def test_corrupt_partition_content(self, broken_dir):
        # Garbage *with a matching checksum* must still fail cleanly when
        # the NPZ container is decoded.
        import hashlib

        path = self._first_partition(broken_dir)
        path.write_bytes(b"not an npz archive at all")
        digest = hashlib.sha256(path.read_bytes()).hexdigest()

        def fix_record(manifest):
            record = manifest["partitions"][0]
            record["sha256"] = digest
            record["nbytes"] = path.stat().st_size

        _rewrite_manifest(broken_dir, fix_record)
        with pytest.raises(PersistError, match="corrupt partition file"):
            CorpusIndex.load(broken_dir)

    def test_unknown_resolution_rejected(self, broken_dir):
        _rewrite_manifest(
            broken_dir,
            lambda m: m["partitions"][0].update({"spatial": "galaxy"}),
        )
        with pytest.raises(PersistError, match="unknown resolution"):
            CorpusIndex.load(broken_dir)

    def test_disk_usage_checks_integrity_too(self, broken_dir):
        path = broken_dir / INDEX_MANIFEST
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistError):
            disk_usage(broken_dir)

    def test_disk_usage_missing_partition_file(self, broken_dir):
        self._first_partition(broken_dir).unlink()
        with pytest.raises(PersistError, match="missing partition file"):
            disk_usage(broken_dir)

    def test_all_failures_are_repro_errors(self, tmp_path):
        # The single-except contract: PersistError derives from ReproError.
        with pytest.raises(ReproError):
            CorpusIndex.load(tmp_path / "missing")
