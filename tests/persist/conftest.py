"""Shared fixtures: one small multi-resolution index, built and saved once."""

import pytest

from repro.core.corpus import Corpus
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution


@pytest.fixture(scope="session")
def built_index():
    """A small index spanning 1-D (city) and 3-D (neighborhood) domains."""
    coll = nyc_urban_collection(
        seed=5, n_days=12, scale=0.2, subset=("taxi", "weather")
    )
    corpus = Corpus(coll.datasets, coll.city)
    return corpus.build_index(
        spatial=(SpatialResolution.CITY, SpatialResolution.NEIGHBORHOOD),
        temporal=(TemporalResolution.DAY, TemporalResolution.HOUR),
    )


@pytest.fixture(scope="session")
def index_dir(built_index, tmp_path_factory):
    """The pristine on-disk form of ``built_index`` (do not mutate)."""
    path = tmp_path_factory.mktemp("corpus-index")
    built_index.save(path)
    return path
