"""Tests for RNG plumbing, timers and the error hierarchy."""

import numpy as np
import pytest

from repro.utils.errors import (
    DataError,
    MapReduceError,
    QueryError,
    ReproError,
    ResolutionError,
    SchemaError,
    TopologyError,
)
from repro.utils.rng import ensure_rng, spawn
from repro.utils.timer import Timer, timed


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        children_a = spawn(ensure_rng(5), 3)
        children_b = spawn(ensure_rng(5), 3)
        for ca, cb in zip(children_a, children_b):
            assert np.array_equal(ca.integers(0, 100, 5), cb.integers(0, 100, 5))
        draws = [c.integers(0, 2**31) for c in spawn(ensure_rng(5), 3)]
        assert len(set(draws)) == 3


class TestTimer:
    def test_accumulates_laps(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert timer.laps == 3
        assert timer.elapsed >= 0.0
        assert timer.mean == pytest.approx(timer.elapsed / 3)

    def test_mean_before_first_lap_is_zero(self):
        assert Timer().mean == 0.0

    def test_timed_adds_into_sink(self):
        sink = {}
        with timed(sink, "phase"):
            pass
        with timed(sink, "phase"):
            pass
        assert sink["phase"] >= 0.0


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [DataError, SchemaError, ResolutionError, TopologyError, QueryError,
         MapReduceError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")
