"""Unit and property tests for the bit-vector feature-set representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitvector import BitVector
from repro.utils.errors import DataError


class TestConstruction:
    def test_empty_vector_has_no_bits(self):
        vec = BitVector(0)
        assert len(vec) == 0
        assert vec.count() == 0

    def test_negative_length_rejected(self):
        with pytest.raises(DataError):
            BitVector(-1)

    def test_from_indices_sets_exactly_those_bits(self):
        vec = BitVector.from_indices(200, [0, 63, 64, 127, 128, 199])
        assert vec.count() == 6
        assert vec.to_indices().tolist() == [0, 63, 64, 127, 128, 199]

    def test_from_indices_out_of_range_rejected(self):
        with pytest.raises(DataError):
            BitVector.from_indices(10, [10])
        with pytest.raises(DataError):
            BitVector.from_indices(10, [-1])

    def test_from_indices_empty(self):
        assert BitVector.from_indices(50, []).count() == 0

    def test_from_bools_round_trip(self):
        flags = np.array([True, False, True, True] * 33)  # 132 bits, odd tail
        vec = BitVector.from_bools(flags)
        assert np.array_equal(vec.to_bools(), flags)

    def test_words_round_trip(self):
        # The serialization contract: words + length rebuild the vector.
        flags = np.array([True, False, True] * 50)  # 150 bits, odd tail
        vec = BitVector.from_bools(flags)
        words = vec.words
        assert words.dtype == np.uint64
        assert words.nbytes == vec.nbytes()
        rebuilt = BitVector.from_words(len(vec), words)
        assert rebuilt == vec
        words[:] = 0  # copies both ways: mutation corrupts neither vector
        assert vec.count() == 100
        assert rebuilt.count() == 100

    def test_from_words_wrong_word_count_rejected(self):
        with pytest.raises(DataError):
            BitVector.from_words(130, np.zeros(1, dtype=np.uint64))

    def test_ones_sets_every_bit(self):
        vec = BitVector.ones(130)
        assert vec.count() == 130

    def test_word_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            BitVector(10, words=np.zeros(5, dtype=np.uint64))


class TestElementAccess:
    def test_set_get_clear(self):
        vec = BitVector(70)
        vec.set(69)
        assert vec[69]
        vec.clear(69)
        assert not vec[69]

    def test_out_of_range_access_rejected(self):
        vec = BitVector(8)
        for op in (vec.set, vec.clear, vec.__getitem__):
            with pytest.raises(DataError):
                op(8)


class TestSetAlgebra:
    def test_and_or_xor(self):
        a = BitVector.from_indices(100, [1, 2, 3])
        b = BitVector.from_indices(100, [2, 3, 4])
        assert (a & b).to_indices().tolist() == [2, 3]
        assert (a | b).to_indices().tolist() == [1, 2, 3, 4]
        assert (a ^ b).to_indices().tolist() == [1, 4]

    def test_difference(self):
        a = BitVector.from_indices(64, [1, 2, 3])
        b = BitVector.from_indices(64, [3])
        assert a.difference(b).to_indices().tolist() == [1, 2]

    def test_invert_respects_tail(self):
        vec = BitVector.from_indices(70, [0])
        inv = ~vec
        assert inv.count() == 69
        assert not inv[0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            BitVector(10) & BitVector(11)

    def test_equality_and_hash(self):
        a = BitVector.from_indices(100, [5, 50])
        b = BitVector.from_indices(100, [5, 50])
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitVector.from_indices(100, [5])

    def test_intersection_count_matches_and(self):
        a = BitVector.from_indices(256, range(0, 256, 3))
        b = BitVector.from_indices(256, range(0, 256, 5))
        assert a.intersection_count(b) == (a & b).count()

    def test_any(self):
        assert not BitVector(100).any()
        assert BitVector.from_indices(100, [99]).any()


class TestPermutation:
    def test_permuted_moves_bits(self):
        vec = BitVector.from_indices(4, [0, 1])
        mapping = np.array([3, 2, 1, 0])
        assert vec.permuted(mapping).to_indices().tolist() == [2, 3]

    def test_permuted_requires_full_mapping(self):
        with pytest.raises(DataError):
            BitVector(4).permuted(np.array([0, 1]))

    def test_permutation_preserves_count(self):
        rng = np.random.default_rng(0)
        vec = BitVector.from_bools(rng.uniform(size=321) < 0.3)
        perm = rng.permutation(321)
        assert vec.permuted(perm).count() == vec.count()


class TestCopySemantics:
    def test_copy_is_independent(self):
        a = BitVector.from_indices(64, [1])
        b = a.copy()
        b.set(2)
        assert not a[2]

    def test_nbytes_accounts_words(self):
        assert BitVector(64).nbytes() == 8
        assert BitVector(65).nbytes() == 16


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=0, max_size=400))
def test_property_bool_round_trip(flags):
    arr = np.array(flags, dtype=bool)
    vec = BitVector.from_bools(arr)
    assert np.array_equal(vec.to_bools(), arr)
    assert vec.count() == int(arr.sum())


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=300),
    st.data(),
)
def test_property_de_morgan(length, data):
    idx_a = data.draw(st.sets(st.integers(0, length - 1)))
    idx_b = data.draw(st.sets(st.integers(0, length - 1)))
    a = BitVector.from_indices(length, idx_a)
    b = BitVector.from_indices(length, idx_b)
    assert ~(a | b) == (~a & ~b)
    assert ~(a & b) == (~a | ~b)
    assert (a & b).count() + (a | b).count() == a.count() + b.count()
