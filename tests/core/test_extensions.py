"""Tests for the §8 extensions: categorical functions and the 3-torus test."""

import numpy as np
import pytest

from repro.core.features import FeatureSet
from repro.core.significance import significance_test
from repro.data.aggregation import FunctionSpec, aggregate
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.graph.domain_graph import DomainGraph
from repro.spatial.adjacency import grid_adjacency
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError

HOUR = 3600


class TestCategoryFunctions:
    def make_dataset(self):
        schema = DatasetSchema(
            "svc",
            SpatialResolution.CITY,
            TemporalResolution.SECOND,
            key_attributes=("complaint_type",),
        )
        return Dataset(
            schema,
            timestamps=np.array([0, 10, 20, HOUR, HOUR + 1]),
            keys={
                "complaint_type": np.array(
                    ["noise", "noise", "heat", "noise", "heat"]
                )
            },
        )

    def test_category_counts(self):
        ds = self.make_dataset()
        spec = FunctionSpec("svc", "category", "complaint_type", category="noise")
        (out,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[spec],
        )
        assert out.values[:, 0].tolist() == [2.0, 1.0]
        assert out.spec.function_id == "svc.count.complaint_type=noise"

    def test_category_counts_sum_to_density(self):
        ds = self.make_dataset()
        outs = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[
                FunctionSpec("svc", "density"),
                FunctionSpec("svc", "category", "complaint_type", category="noise"),
                FunctionSpec("svc", "category", "complaint_type", category="heat"),
            ],
        )
        density, noise, heat = (o.values for o in outs)
        assert np.array_equal(noise + heat, density)

    def test_category_needs_value(self):
        with pytest.raises(DataError):
            FunctionSpec("svc", "category", "complaint_type")

    def test_category_needs_key_column(self):
        schema = DatasetSchema(
            "n",
            SpatialResolution.CITY,
            TemporalResolution.SECOND,
            numeric_attributes=("v",),
        )
        ds = Dataset(schema, timestamps=np.array([0]), numerics={"v": np.array([1.0])})
        with pytest.raises(DataError):
            aggregate(
                ds,
                SpatialResolution.CITY,
                TemporalResolution.HOUR,
                specs=[FunctionSpec("n", "category", "v", category="1")],
            )


class TestSpatioTemporalTorus:
    def make_pair(self, related, seed=0):
        rng = np.random.default_rng(seed)
        n_steps, n_regions = 50, 16
        pos1 = rng.uniform(size=(n_steps, n_regions)) < 0.08
        neg1 = (rng.uniform(size=(n_steps, n_regions)) < 0.08) & ~pos1
        if related:
            pos2, neg2 = pos1.copy(), neg1.copy()
        else:
            pos2 = rng.uniform(size=(n_steps, n_regions)) < 0.08
            neg2 = (rng.uniform(size=(n_steps, n_regions)) < 0.08) & ~pos2
        graph = DomainGraph(n_regions, n_steps, grid_adjacency(4, 4))
        return FeatureSet(pos1, neg1), FeatureSet(pos2, neg2), graph

    def test_aligned_features_significant(self):
        fs1, fs2, graph = self.make_pair(related=True)
        result = significance_test(
            fs1,
            fs2,
            graph,
            n_permutations=150,
            method="spatiotemporal_torus",
            seed=0,
        )
        assert result.method == "spatiotemporal_torus"
        assert result.observed_score == pytest.approx(1.0)
        assert result.is_significant()

    def test_independent_features_not_significant(self):
        fs1, fs2, graph = self.make_pair(related=False, seed=4)
        result = significance_test(
            fs1,
            fs2,
            graph,
            n_permutations=150,
            method="spatiotemporal_torus",
            seed=0,
        )
        assert not result.is_significant()

    def test_degenerates_to_rotation_for_time_series(self):
        rng = np.random.default_rng(1)
        mask = rng.uniform(size=(200, 1)) < 0.1
        fs = FeatureSet(mask, np.zeros_like(mask))
        graph = DomainGraph(1, 200)
        result = significance_test(
            fs,
            fs,
            graph,
            n_permutations=50,
            method="spatiotemporal_torus",
            seed=0,
        )
        assert 0.0 < result.p_value <= 1.0
