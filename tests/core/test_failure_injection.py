"""Failure-injection tests: degenerate domains, empty data, edge geometries.

The DESIGN.md testing strategy calls for explicit coverage of the inputs
that break naive implementations: constant functions (no critical points
beyond the perturbation), single-step and single-region domains, collections
with no common resolution, and non-finite values.
"""

import numpy as np
import pytest

from repro.core.corpus import Corpus
from repro.core.features import FeatureExtractor
from repro.core.relationship import evaluate_features
from repro.core.scalar_function import ScalarFunction
from repro.core.significance import significance_test
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.graph.domain_graph import DomainGraph
from repro.spatial.city import CityModel
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError


class TestDegenerateFunctions:
    def test_constant_function_produces_no_runaway_features(self):
        sf = ScalarFunction.time_series("c.v", np.full(200, 3.0))
        features = FeatureExtractor().extract(sf)
        # One perturbed extremum pair exists, but the masks must not flood
        # the domain (the guard drops >50% masks).
        assert features.salient.n_features() <= sf.n_vertices // 2

    def test_single_step_function(self):
        graph = DomainGraph(4, 1, np.array([[0, 1], [1, 2], [2, 3]]))
        sf = ScalarFunction(
            "s.v",
            np.array([[1.0, 5.0, 2.0, 4.0]]),
            graph,
            SpatialResolution.NEIGHBORHOOD,
            TemporalResolution.DAY,
        )
        features = FeatureExtractor().extract(sf)
        assert features.salient.shape == (1, 4)

    def test_single_vertex_function(self):
        sf = ScalarFunction.time_series("one.v", [7.0])
        features = FeatureExtractor().extract(sf)
        assert features.salient.shape == (1, 1)

    def test_non_finite_values_rejected(self):
        graph = DomainGraph(1, 2)
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(DataError):
                ScalarFunction(
                    "bad.v",
                    np.array([[1.0], [bad]]),
                    graph,
                    SpatialResolution.CITY,
                    TemporalResolution.HOUR,
                )

    def test_two_point_significance(self):
        sf = ScalarFunction.time_series("t.v", [1.0, 2.0])
        features = FeatureExtractor().extract(sf)
        result = significance_test(
            features.salient, features.salient, sf.graph, n_permutations=10
        )
        assert 0.0 < result.p_value <= 1.0


class TestMismatchedCollections:
    def make_dataset(self, name, temporal, n, spacing):
        schema = DatasetSchema(
            name, SpatialResolution.CITY, temporal, numeric_attributes=("v",)
        )
        rng = np.random.default_rng(0)
        return Dataset(
            schema,
            timestamps=np.arange(n, dtype=np.int64) * spacing,
            numerics={"v": rng.normal(0, 1, n)},
        )

    def test_week_vs_month_native_pair_yields_no_evaluations(self):
        weekly = self.make_dataset("w", TemporalResolution.WEEK, 30, 604800)
        monthly = self.make_dataset("m", TemporalResolution.MONTH, 7, 2592000)
        city = CityModel.synthetic(nbhd_grid=(2, 2), zip_grid=(2, 2))
        index = Corpus([weekly, monthly], city).build_index()
        result = index.query(n_permutations=10, seed=0)
        # Incompatible native resolutions (Fig. 6): nothing to evaluate.
        assert result.n_evaluated == 0
        assert result.results == []

    def test_disjoint_time_ranges_yield_no_evaluations(self):
        early = self.make_dataset("early", TemporalResolution.DAY, 20, 86400)
        schema = DatasetSchema(
            "late",
            SpatialResolution.CITY,
            TemporalResolution.DAY,
            numeric_attributes=("v",),
        )
        late = Dataset(
            schema,
            timestamps=(10_000 + np.arange(20, dtype=np.int64)) * 86400,
            numerics={"v": np.random.default_rng(1).normal(0, 1, 20)},
        )
        city = CityModel.synthetic(nbhd_grid=(2, 2), zip_grid=(2, 2))
        index = Corpus([early, late], city).build_index(
            temporal=(TemporalResolution.DAY,)
        )
        result = index.query(n_permutations=10, seed=0)
        assert result.n_evaluated == 0


class TestEmptyFeatureInteractions:
    def test_empty_vs_nonempty_features_unrelated(self):
        from repro.core.features import FeatureSet

        empty = FeatureSet.empty(10, 2)
        other = FeatureSet.empty(10, 2)
        other.positive[3, 1] = True
        measures = evaluate_features(empty, other)
        assert not measures.is_related
        assert measures.score == 0.0
        assert measures.strength == 0.0

    def test_query_result_helpers_on_empty_result(self):
        from repro.core.corpus import QueryResult

        result = QueryResult()
        assert result.top(5) == []
        assert result.between("a", "b") == []
        assert result.evaluations_per_minute == 0.0
