"""Tests for the restricted Monte Carlo significance tests (§4)."""

import numpy as np
import pytest

from repro.core.features import FeatureSet
from repro.core.relationship import evaluate_features
from repro.core.significance import (
    adjacency_preservation,
    rotation_scores_all,
    significance_test,
    toroidal_map,
)
from repro.graph.domain_graph import DomainGraph
from repro.spatial.adjacency import grid_adjacency, neighbors_from_pairs
from repro.utils.errors import DataError


def time_series_features(pos_hours, neg_hours, n_steps):
    pos = np.zeros((n_steps, 1), dtype=bool)
    neg = np.zeros((n_steps, 1), dtype=bool)
    pos[list(pos_hours), 0] = True
    neg[list(neg_hours), 0] = True
    return FeatureSet(pos, neg)


def block_features(seed, n_steps, n_blocks=20, block_len=4):
    """Two-signed block features: n_blocks positive + n_blocks negative runs.

    Dense enough that a rotation null sees ~10 simultaneous block overlaps;
    since each overlap's relation sign is a coin flip under the null,
    P(|tau_k| = 1) ~ 2^(1-m) — decisively rare.
    """
    rng = np.random.default_rng(seed)
    pos = np.zeros((n_steps, 1), dtype=bool)
    neg = np.zeros((n_steps, 1), dtype=bool)
    # Blocks are drawn from disjoint slots so positive and negative runs
    # never overlap (tau* of the aligned pair is exactly 1).
    slots = np.arange(n_steps // (2 * block_len))
    chosen = rng.choice(slots, 2 * n_blocks, replace=False) * 2 * block_len
    for s in chosen[:n_blocks]:
        pos[s : s + block_len, 0] = True
    for s in chosen[n_blocks:]:
        neg[s : s + block_len, 0] = True
    return FeatureSet(pos, neg)


class TestRotationScores:
    def test_fft_matches_explicit_roll(self):
        rng = np.random.default_rng(0)
        n = 60
        fs1 = FeatureSet(rng.uniform(size=(n, 2)) < 0.3, rng.uniform(size=(n, 2)) < 0.2)
        fs2 = FeatureSet(
            rng.uniform(size=(n, 2)) < 0.25, rng.uniform(size=(n, 2)) < 0.3
        )
        fft_scores = rotation_scores_all(fs1, fs2)
        for k in range(1, n):
            rolled = FeatureSet(
                np.roll(fs2.positive, k, axis=0), np.roll(fs2.negative, k, axis=0)
            )
            p1, n1 = fs1.positive, fs1.negative
            p2, n2 = rolled.positive, rolled.negative
            pp = np.count_nonzero(p1 & p2) + np.count_nonzero(n1 & n2)
            pn = np.count_nonzero(p1 & n2) + np.count_nonzero(n1 & p2)
            sig = np.count_nonzero((p1 | n1) & (p2 | n2))
            expected = (pp - pn) / sig if sig else 0.0
            assert fft_scores[k - 1] == pytest.approx(expected, abs=1e-9)

    def test_zero_shift_excluded(self):
        fs1 = time_series_features([3], [], 10)
        fs2 = time_series_features([3], [], 10)
        scores = rotation_scores_all(fs1, fs2)
        assert scores.size == 9


class TestSignificanceTemporal:
    def test_planted_relationship_is_significant(self):
        # Sign-aligned block features: rotations scramble the sign
        # alignment, so tau* = 1 is rare under the null.
        fs1 = block_features(seed=1, n_steps=1000)
        fs2 = FeatureSet(fs1.positive.copy(), fs1.negative.copy())
        graph = DomainGraph(1, 1000)
        result = significance_test(fs1, fs2, graph, n_permutations=400, seed=0)
        assert result.method == "temporal_rotation"
        assert result.observed_score == pytest.approx(1.0)
        assert result.is_significant()

    def test_disjoint_features_not_significant(self):
        fs1 = time_series_features(range(0, 100, 10), [], 100)
        fs2 = time_series_features(range(5, 100, 10), [], 100)
        graph = DomainGraph(1, 100)
        result = significance_test(fs1, fs2, graph, n_permutations=99, seed=0)
        assert result.observed_score == 0.0
        assert not result.is_significant()

    def test_alternative_validation(self):
        fs = time_series_features([1], [], 10)
        graph = DomainGraph(1, 10)
        with pytest.raises(DataError):
            significance_test(fs, fs, graph, alternative="weird")

    def test_shape_mismatch_rejected(self):
        graph = DomainGraph(1, 10)
        with pytest.raises(DataError):
            significance_test(
                time_series_features([1], [], 10),
                time_series_features([1], [], 11),
                graph,
            )

    def test_left_and_right_tails(self):
        fs1 = block_features(seed=3, n_steps=1000)
        fs2 = FeatureSet(fs1.negative.copy(), fs1.positive.copy())  # sign-flipped
        graph = DomainGraph(1, 1000)
        left = significance_test(fs1, fs2, graph, alternative="less", seed=0)
        right = significance_test(fs1, fs2, graph, alternative="greater", seed=0)
        assert left.observed_score == pytest.approx(-1.0)
        assert left.p_value < 0.05
        assert right.p_value > 0.5

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        f1 = FeatureSet(
            rng.uniform(size=(400, 1)) < 0.1, rng.uniform(size=(400, 1)) < 0.1
        )
        f2 = FeatureSet(
            rng.uniform(size=(400, 1)) < 0.1, rng.uniform(size=(400, 1)) < 0.1
        )
        graph = DomainGraph(1, 400)
        a = significance_test(f1, f2, graph, n_permutations=50, seed=9)
        b = significance_test(f1, f2, graph, n_permutations=50, seed=9)
        assert a.p_value == b.p_value


class TestToroidalMaps:
    def test_map_is_a_permutation(self):
        pairs = grid_adjacency(5, 5)
        neighbors = neighbors_from_pairs(25, pairs)
        rng = np.random.default_rng(0)
        for _ in range(10):
            image = toroidal_map(neighbors, rng)
            assert sorted(image.tolist()) == list(range(25))

    def test_maps_mostly_preserve_adjacency(self):
        pairs = grid_adjacency(6, 6)
        neighbors = neighbors_from_pairs(36, pairs)
        rng = np.random.default_rng(1)
        fractions = [
            adjacency_preservation(neighbors, toroidal_map(neighbors, rng))
            for _ in range(20)
        ]
        # §4: distances preserved "in most cases".  Random permutations
        # preserve ~ d/n of edges (~11% here); BFS-grown maps must do much
        # better on average.
        assert np.mean(fractions) > 0.4

    def test_random_permutation_preserves_little(self):
        pairs = grid_adjacency(6, 6)
        neighbors = neighbors_from_pairs(36, pairs)
        rng = np.random.default_rng(2)
        fractions = [
            adjacency_preservation(neighbors, rng.permutation(36))
            for _ in range(20)
        ]
        assert np.mean(fractions) < 0.25


class TestSignificanceSpatial:
    def make_spatial_pair(self, related, seed=0):
        # Many scattered single-region features of both signs: toroidal
        # shifts relocate regions, so sign alignment across ~dozens of
        # overlap points is vanishingly rare under the null.
        rng = np.random.default_rng(seed)
        n_steps, nx, ny = 60, 6, 6
        n_regions = nx * ny
        pos1 = rng.uniform(size=(n_steps, n_regions)) < 0.08
        neg1 = (rng.uniform(size=(n_steps, n_regions)) < 0.08) & ~pos1
        if related:
            pos2, neg2 = pos1.copy(), neg1.copy()
        else:
            pos2 = rng.uniform(size=(n_steps, n_regions)) < 0.08
            neg2 = (rng.uniform(size=(n_steps, n_regions)) < 0.08) & ~pos2
        graph = DomainGraph(n_regions, n_steps, grid_adjacency(nx, ny))
        return FeatureSet(pos1, neg1), FeatureSet(pos2, neg2), graph

    def test_spatially_aligned_features_significant(self):
        fs1, fs2, graph = self.make_spatial_pair(related=True)
        result = significance_test(fs1, fs2, graph, n_permutations=200, seed=0)
        assert result.method == "spatial_toroidal"
        assert result.observed_score == pytest.approx(1.0)
        assert result.is_significant()

    def test_spatially_independent_features_not_significant(self):
        # seed=2 is a typical draw (tau near 0); at the 5% level roughly one
        # seed in twenty is a legitimate false positive, so the test pins a
        # representative one rather than sampling.
        fs1, fs2, graph = self.make_spatial_pair(related=False, seed=2)
        result = significance_test(fs1, fs2, graph, n_permutations=200, seed=0)
        assert abs(result.observed_score) < 0.5
        assert not result.is_significant()

    def test_naive_method_runs(self):
        fs1, fs2, graph = self.make_spatial_pair(related=True)
        result = significance_test(
            fs1, fs2, graph, n_permutations=50, method="naive", seed=0
        )
        assert result.method == "naive"
        assert 0.0 < result.p_value <= 1.0

    def test_unknown_method_rejected(self):
        fs1, fs2, graph = self.make_spatial_pair(related=True)
        with pytest.raises(DataError):
            significance_test(fs1, fs2, graph, method="quantum")


class TestRestrictedVsNaive:
    def test_naive_test_overstates_significance_on_autocorrelated_data(self):
        # Two independent but strongly autocorrelated feature streams: block
        # features of length 12.  The naive test scatters single points
        # (destroying block structure) and deems the overlap significant;
        # the rotation test preserves blocks and does not.
        n = 600
        def blocky(seed):
            r = np.random.default_rng(seed)
            pos = np.zeros((n, 1), dtype=bool)
            neg = np.zeros((n, 1), dtype=bool)
            for start in r.choice(n - 12, 10, replace=False):
                pos[start : start + 12, 0] = True
            for start in r.choice(n - 12, 10, replace=False):
                neg[start : start + 12, 0] = True
            neg &= ~pos
            return FeatureSet(pos, neg)
        graph = DomainGraph(1, n)
        p_rotation = []
        p_naive = []
        for seed in range(8):
            fs1 = blocky(seed * 2)
            fs2 = blocky(seed * 2 + 1)
            if not evaluate_features(fs1, fs2).is_related:
                continue
            p_rotation.append(significance_test(fs1, fs2, graph, 99, seed=seed).p_value)
            p_naive.append(
                significance_test(
                    fs1, fs2, graph, 99, method="naive", seed=seed
                ).p_value
            )
        # The naive test's p-values are systematically smaller (anti-
        # conservative) than the restricted ones on dependent data.
        assert np.mean(p_naive) < np.mean(p_rotation)
