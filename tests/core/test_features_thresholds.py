"""Tests for level-set queries, thresholds and the feature pipeline (§3.2-3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import (
    FeatureExtractor,
    FeatureSet,
    query_sublevel,
    query_superlevel,
    sublevel_mask,
    superlevel_mask,
)
from repro.core.merge_tree import compute_join_tree, compute_split_tree
from repro.core.scalar_function import ScalarFunction
from repro.core.thresholds import (
    extreme_thresholds,
    salient_cluster,
    salient_thresholds,
)
from repro.graph.domain_graph import DomainGraph
from repro.spatial.adjacency import grid_adjacency
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError


def series(values, temporal=TemporalResolution.HOUR):
    return ScalarFunction.time_series("t.f", np.asarray(values, dtype=float), temporal)


def grid_function(values, nx, ny, seed_id="g.f"):
    values = np.asarray(values, dtype=float)
    graph = DomainGraph(nx * ny, values.shape[0], grid_adjacency(nx, ny))
    return ScalarFunction(
        seed_id, values, graph, SpatialResolution.NEIGHBORHOOD, TemporalResolution.HOUR
    )


class TestLevelSetQueries:
    def test_traversal_equals_mask_1d(self):
        sf = series([3, 6, 2, 5, 1.5, 4, 0, 7, 1])
        join = compute_join_tree(sf.graph, sf.flat_values())
        split = compute_split_tree(sf.graph, sf.flat_values())
        for theta in [-1.0, 0.0, 1.9, 4.0, 6.9, 7.0, 8.0]:
            assert np.array_equal(
                query_superlevel(sf, theta, join), superlevel_mask(sf, theta)
            )
            assert np.array_equal(
                query_sublevel(sf, theta, split), sublevel_mask(sf, theta)
            )

    def test_wrong_tree_kind_rejected(self):
        sf = series([1, 2, 3])
        join = compute_join_tree(sf.graph, sf.flat_values())
        with pytest.raises(DataError):
            query_sublevel(sf, 1.0, join)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=50),
        st.floats(min_value=-5, max_value=5),
    )
    def test_property_traversal_equals_mask_random_1d(self, values, theta):
        sf = series(values)
        join = compute_join_tree(sf.graph, sf.flat_values())
        split = compute_split_tree(sf.graph, sf.flat_values())
        assert np.array_equal(
            query_superlevel(sf, theta, join), superlevel_mask(sf, theta)
        )
        assert np.array_equal(
            query_sublevel(sf, theta, split), sublevel_mask(sf, theta)
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_traversal_equals_mask_random_grid(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(0, 1, (12, 9))
        sf = grid_function(values, 3, 3)
        join = compute_join_tree(sf.graph, sf.flat_values())
        split = compute_split_tree(sf.graph, sf.flat_values())
        theta = float(rng.uniform(-2, 2))
        assert np.array_equal(
            query_superlevel(sf, theta, join), superlevel_mask(sf, theta)
        )
        assert np.array_equal(
            query_sublevel(sf, theta, split), sublevel_mask(sf, theta)
        )


class TestSalientCluster:
    def test_empty(self):
        assert salient_cluster(np.zeros(0)).size == 0

    def test_singleton_is_salient(self):
        assert salient_cluster(np.array([2.0])).tolist() == [True]

    def test_all_equal_all_salient(self):
        assert salient_cluster(np.full(5, 1.0)).all()

    def test_clear_split(self):
        mask = salient_cluster(np.array([0.1, 0.2, 0.15, 5.0, 6.0]))
        assert mask.tolist() == [False, False, False, True, True]


class TestSalientThresholds:
    def test_thresholds_capture_high_persistence_extrema(self):
        # Two tall peaks + noise wiggles; thresholds must include both peaks.
        rng = np.random.default_rng(0)
        values = 5 + rng.normal(0, 0.05, 200)
        values[50] += 4.0
        values[150] += 5.0
        values[100] -= 4.5  # one deep valley
        sf = series(values)
        join = compute_join_tree(sf.graph, sf.flat_values())
        split = compute_split_tree(sf.graph, sf.flat_values())
        thr = salient_thresholds(join, split)
        assert thr.theta_pos is not None and thr.theta_pos <= values[150]
        assert thr.theta_pos <= values[50] + 1e-9
        assert thr.theta_neg is not None and thr.theta_neg >= values[100] - 1e-9
        # The thresholds exclude the bulk of the noise band.  (Baseline
        # minima *adjacent to tall peaks* have legitimately high persistence
        # — the peak is their barrier — so theta_neg sits just below the
        # baseline, not down at the deep valley.)
        assert thr.theta_pos > 5.5
        assert thr.theta_neg < 4.95

    def test_salient_extrema_values_recorded(self):
        # Two tall peaks (10, 9) + two tiny bumps (0.2): the high-persistence
        # cluster is exactly the tall pair.
        sf = series([0, 10, 0, 9, 0, 0.2, 0, 0.2, 0])
        join = compute_join_tree(sf.graph, sf.flat_values())
        split = compute_split_tree(sf.graph, sf.flat_values())
        thr = salient_thresholds(join, split)
        assert sorted(thr.salient_max_values.tolist()) == [9.0, 10.0]


class TestExtremeThresholds:
    def test_fences(self):
        maxima = np.array([10.0, 11.0, 10.5, 11.5, 30.0])
        minima = np.array([1.0, 0.8, 1.2, 0.9, -20.0])
        pos, neg = extreme_thresholds(maxima, minima)
        assert pos is not None and 11.5 < pos < 30.0
        assert neg is not None and -20.0 < neg < 0.8

    def test_too_few_extrema_give_none(self):
        pos, neg = extreme_thresholds(np.array([1.0, 2.0]), np.array([1.0]))
        assert pos is None and neg is None


class TestFeatureSet:
    def test_union_and_counts(self):
        pos = np.zeros((4, 2), dtype=bool)
        neg = np.zeros((4, 2), dtype=bool)
        pos[0, 0] = True
        neg[1, 1] = True
        neg[0, 0] = True  # overlapping point counts once in the union
        fs = FeatureSet(pos, neg)
        assert fs.n_features() == 2

    def test_slice_steps(self):
        pos = np.zeros((5, 1), dtype=bool)
        pos[3, 0] = True
        fs = FeatureSet(pos, np.zeros((5, 1), dtype=bool))
        sliced = fs.slice_steps(2, 5)
        assert sliced.shape == (3, 1)
        assert sliced.positive[1, 0]

    def test_misaligned_masks_rejected(self):
        with pytest.raises(DataError):
            FeatureSet(np.zeros((2, 2), bool), np.zeros((3, 2), bool))

    def test_to_bitvectors_counts_match(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(size=(6, 7)) < 0.3
        neg = rng.uniform(size=(6, 7)) < 0.2
        fs = FeatureSet(pos, neg)
        bp, bn = fs.to_bitvectors()
        assert bp.count() == int(pos.sum())
        assert bn.count() == int(neg.sum())

    def test_empty_constructor(self):
        fs = FeatureSet.empty(3, 4)
        assert fs.shape == (3, 4)
        assert fs.n_features() == 0


class TestFeatureExtractor:
    def make_function_with_events(self, n=24 * 40, seed=0):
        # Events in every seasonal interval (the default step labels span
        # Jan + Feb 1970), so the per-interval 2-means always has a real
        # high-persistence cluster to find.
        rng = np.random.default_rng(seed)
        values = 10 + rng.normal(0, 0.2, n)
        spikes = [200, 500, 700, 800, 900]
        for s in spikes:
            values[s : s + 5] += 8.0
        dips = [300, 600, 850]
        for d in dips:
            values[d : d + 5] -= 8.0
        return series(values), spikes, dips

    def test_salient_features_cover_planted_events(self):
        sf, spikes, dips = self.make_function_with_events()
        features = FeatureExtractor().extract(sf)
        for s in spikes:
            assert features.salient.positive[s : s + 5, 0].any(), s
        for d in dips:
            assert features.salient.negative[d : d + 5, 0].any(), d

    def test_quiet_hours_are_not_features(self):
        sf, _, _ = self.make_function_with_events()
        features = FeatureExtractor().extract(sf)
        # The flat baseline must be mostly feature-free.
        fraction = features.salient.n_features() / sf.n_vertices
        assert fraction < 0.15

    def test_index_and_mask_paths_agree(self):
        sf, _, _ = self.make_function_with_events(seed=3)
        via_mask = FeatureExtractor(use_index=False).extract(sf)
        via_index = FeatureExtractor(use_index=True).extract(sf)
        assert np.array_equal(via_mask.salient.positive, via_index.salient.positive)
        assert np.array_equal(via_mask.salient.negative, via_index.salient.negative)

    def test_seasonal_vs_global_thresholds_differ_on_seasonal_data(self):
        # A function whose baseline shifts by season: seasonal thresholds
        # adapt, global thresholds cannot.
        n = 24 * 90  # three months of hourly steps
        t = np.arange(n)
        noise = np.random.default_rng(0).normal(0, 0.3, n)
        values = 10 + 6 * np.sin(2 * np.pi * t / (24 * 60)) + noise
        sf = series(values)
        seasonal = FeatureExtractor(seasonal=True).extract(sf)
        global_ = FeatureExtractor(seasonal=False).extract(sf)
        assert seasonal.salient.n_features() != global_.salient.n_features()

    def test_extract_with_thresholds(self):
        sf = series([0, 5, 0, -5, 0])
        fs = FeatureExtractor().extract_with_thresholds(sf, 4.0, -4.0)
        assert fs.positive[1, 0]
        assert fs.negative[3, 0]
        assert fs.n_features() == 2

    def test_extract_with_one_sided_thresholds(self):
        sf = series([0, 5, 0, -5, 0])
        fs = FeatureExtractor().extract_with_thresholds(sf, 4.0, None)
        assert fs.positive[1, 0]
        assert not fs.negative.any()

    def test_extreme_features_are_outliers_only(self):
        rng = np.random.default_rng(2)
        n = 24 * 60
        values = 10 + rng.normal(0, 0.2, n)
        # Many moderate dips (salient), one catastrophic dip (extreme).
        for d in range(100, n - 200, 240):
            values[d : d + 4] -= 4.0
        values[1000:1010] -= 15.0
        sf = series(values)
        features = FeatureExtractor().extract(sf)
        assert features.extreme.negative[1000:1010, 0].any()
        # Moderate dips are salient but not extreme (only the dip's lowest
        # points fall under the data-driven theta-, hence the window check).
        assert features.salient.negative[100:104, 0].any()
        assert not features.extreme.negative[100:104, 0].any()

    def test_interval_reports_cover_all_steps(self):
        sf, _, _ = self.make_function_with_events()
        features = FeatureExtractor().extract(sf)
        covered = sum(r.step_stop - r.step_start for r in features.intervals)
        assert covered == sf.n_steps

    def test_nbytes_positive(self):
        sf, _, _ = self.make_function_with_events()
        assert FeatureExtractor().extract(sf).nbytes() > 0
