"""Tests for gradient-based features (paper §8 extension)."""

import numpy as np
import pytest

from repro.core.gradients import GradientFeatureExtractor, gradient_magnitude
from repro.core.scalar_function import ScalarFunction
from repro.graph.domain_graph import DomainGraph
from repro.spatial.adjacency import grid_adjacency
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution


class TestGradientMagnitude:
    def test_constant_function_has_zero_gradient(self):
        sf = ScalarFunction.time_series("c.v", np.full(20, 5.0))
        grad = gradient_magnitude(sf)
        assert (grad.values == 0).all()
        assert grad.function_id == "c.v.gradient"

    def test_step_function_gradient_localized(self):
        values = np.zeros(20)
        values[10:] = 8.0
        sf = ScalarFunction.time_series("s.v", values)
        grad = gradient_magnitude(sf)
        flat = grad.values[:, 0]
        assert flat[9] == pytest.approx(8.0)
        assert flat[10] == pytest.approx(8.0)
        assert flat[5] == 0.0
        assert flat[15] == 0.0

    def test_linear_ramp_has_constant_gradient(self):
        sf = ScalarFunction.time_series("r.v", np.arange(10, dtype=float) * 2.0)
        grad = gradient_magnitude(sf)
        assert np.allclose(grad.values[:, 0], 2.0)

    def test_spatial_gradient_on_grid(self):
        pairs = grid_adjacency(2, 1)
        graph = DomainGraph(2, 3, pairs)
        values = np.array([[0.0, 5.0], [0.0, 5.0], [0.0, 5.0]])
        sf = ScalarFunction(
            "g.v",
            values,
            graph,
            SpatialResolution.NEIGHBORHOOD,
            TemporalResolution.HOUR,
        )
        grad = gradient_magnitude(sf)
        # The spatial discontinuity dominates: both regions see |5 - 0| = 5.
        assert (grad.values == 5.0).all()

    def test_domain_preserved(self):
        sf = ScalarFunction.time_series("d.v", np.random.default_rng(0).normal(size=30))
        grad = gradient_magnitude(sf)
        assert grad.graph is sf.graph
        assert grad.spatial is sf.spatial
        assert grad.temporal is sf.temporal


class TestGradientFeatures:
    def test_detects_night_surge_missed_by_level_sets(self):
        """The §8 motivating case: a sudden surge during a calm period.

        A strong diurnal cycle (peaks ~45) sets the super-level threshold
        well above a night-time surge (15 -> 25), so the plain level-set
        extractor misses it.  The surge's instantaneous jump, however, is
        the sharpest gradient in the series — the gradient extractor finds
        it.
        """
        n_steps = 24 * 40
        rng = np.random.default_rng(1)
        t = np.arange(n_steps)
        values = (
            30 + 15 * np.sin(2 * np.pi * (t - 6) / 24) + rng.normal(0, 0.5, n_steps)
        )
        # Surge at 3am on day 20: baseline ~15 jumps to ~25 for 4 hours.
        surge_start = 20 * 24 + 3
        surge = slice(surge_start, surge_start + 4)
        values[surge] += 10.0
        sf = ScalarFunction.time_series("surge.v", values, TemporalResolution.HOUR)

        from repro.core.features import FeatureExtractor

        plain = FeatureExtractor().extract(sf)
        assert not plain.salient.positive[surge, 0].any(), (
            "the night surge stays below the diurnal super-level threshold"
        )
        gradient_features = GradientFeatureExtractor().extract(sf)
        window = slice(surge_start - 1, surge_start + 5)
        assert gradient_features.salient.positive[window, 0].any()
        assert gradient_features.function_id == "surge.v.gradient"
        assert not gradient_features.salient.negative.any()

    def test_quiet_function_yields_few_gradient_features(self):
        rng = np.random.default_rng(2)
        sf = ScalarFunction.time_series("q.v", 10 + rng.normal(0, 0.1, 24 * 40))
        features = GradientFeatureExtractor().extract(sf)
        fraction = features.salient.n_features() / sf.n_vertices
        assert fraction < 0.6  # noise gradients are bounded; no runaway masks
