"""Cross-cutting property tests on the topology core.

These check mathematical invariants the implementation must satisfy:

* **Persistence stability** (Cohen-Steiner et al., cited as [8]): perturbing
  the function by at most ε changes the maximum persistence by at most 2ε —
  the property §6.2 credits for the framework's robustness.
* **Toroidal maps are bijections** on arbitrary grid graphs.
* **Aggregation conservation**: density mass is preserved across resolution
  changes (coarser time = summed counts; coarser space = summed regions).
* **Relationship-score invariance**: τ and ρ are invariant under any
  simultaneous relabeling of the spatio-temporal points of both functions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import FeatureSet
from repro.core.merge_tree import compute_join_tree
from repro.core.relationship import evaluate_features
from repro.core.scalar_function import ScalarFunction
from repro.core.significance import toroidal_map
from repro.spatial.adjacency import grid_adjacency, neighbors_from_pairs


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=-10, max_value=10), min_size=3, max_size=50),
    st.floats(min_value=0.001, max_value=0.5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_max_persistence_stable_under_perturbation(values, eps, seed):
    sf = ScalarFunction.time_series("p.v", values)
    tree = compute_join_tree(sf.graph, sf.flat_values())
    base_max = tree.persistence_values().max()

    rng = np.random.default_rng(seed)
    noise = rng.uniform(-eps, eps, len(values))
    noisy = ScalarFunction.time_series("p.n", np.asarray(values) + noise)
    noisy_tree = compute_join_tree(noisy.graph, noisy.flat_values())
    noisy_max = noisy_tree.persistence_values().max()

    assert abs(noisy_max - base_max) <= 2 * eps + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_toroidal_maps_are_bijections(nx, ny, seed):
    n = nx * ny
    neighbors = neighbors_from_pairs(n, grid_adjacency(nx, ny))
    rng = np.random.default_rng(seed)
    image = toroidal_map(neighbors, rng)
    assert sorted(image.tolist()) == list(range(n))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_density_mass_conserved_across_resolutions(seed):
    from repro.data.aggregation import FunctionSpec, aggregate
    from repro.data.dataset import Dataset
    from repro.data.schema import DatasetSchema
    from repro.spatial.regions import grid_partition
    from repro.spatial.resolution import SpatialResolution
    from repro.temporal.resolution import TemporalResolution

    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 300))
    schema = DatasetSchema("d", SpatialResolution.GPS, TemporalResolution.SECOND)
    ds = Dataset(
        schema,
        timestamps=rng.integers(0, 10 * 86400, n),
        x=rng.uniform(0.001, 3.999, n),
        y=rng.uniform(0.001, 3.999, n),
    )
    grid = grid_partition(4, 4, 0, 0, 4, 4)
    spec = [FunctionSpec("d", "density")]
    (hour_nbhd,) = aggregate(
        ds,
        SpatialResolution.NEIGHBORHOOD,
        TemporalResolution.HOUR,
        regions=grid,
        specs=spec,
    )
    (day_city,) = aggregate(
        ds, SpatialResolution.CITY, TemporalResolution.DAY, specs=spec
    )
    # Total mass equals the record count at every resolution.
    assert hour_nbhd.values.sum() == n
    assert day_city.values.sum() == n


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_scores_invariant_under_shared_relabeling(seed):
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(2, 15)), int(rng.integers(1, 5)))
    size = shape[0] * shape[1]

    def random_fs():
        pos = rng.uniform(size=shape) < 0.3
        neg = (rng.uniform(size=shape) < 0.3) & ~pos
        return FeatureSet(pos, neg)

    fs1, fs2 = random_fs(), random_fs()
    base = evaluate_features(fs1, fs2)

    perm = rng.permutation(size)

    def relabel(fs):
        return FeatureSet(
            fs.positive.ravel()[perm].reshape(shape),
            fs.negative.ravel()[perm].reshape(shape),
        )

    relabeled = evaluate_features(relabel(fs1), relabel(fs2))
    assert relabeled.score == base.score
    assert relabeled.strength == base.strength
    assert relabeled.n_related == base.n_related
