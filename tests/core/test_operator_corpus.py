"""Tests for the relation() operator, clauses, and corpus indexing/querying."""

import numpy as np
import pytest

from repro.core.clause import Clause
from repro.core.corpus import Corpus
from repro.core.features import FeatureExtractor
from repro.core.operator import DatasetIndex, IndexedFunction, relation
from repro.core.scalar_function import ScalarFunction
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.spatial.city import CityModel
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError, QueryError

HOUR = 3600


def make_indexed(name, values, temporal=TemporalResolution.HOUR, step_offset=0):
    sf = ScalarFunction.time_series(
        f"{name}.v",
        np.asarray(values, dtype=float),
        temporal,
        step_labels=np.arange(step_offset, step_offset + len(values)),
    )
    features = FeatureExtractor().extract(sf)
    index = DatasetIndex(dataset=name)
    index.functions[(SpatialResolution.CITY, temporal)] = [
        IndexedFunction(function=sf, features=features)
    ]
    return index


def correlated_series(seed=0, n=1200):
    """Two urban-like series sharing two-signed events.

    A diurnal cycle plus co-occurring spikes AND dips: the cycle keeps the
    persistence clusters separable (like real count functions), and
    two-signed events keep the score statistic non-degenerate under
    rotation nulls.  Event counts are chosen so the null produces ~10
    simultaneous block overlaps per rotation: P(|tau_k| = 1) ~ 2^(1-m),
    so tau* = 1 becomes decisively rare under the null.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    base = 10 + 1.5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.2, n)
    ups = rng.choice(n - 6, 25, replace=False)
    downs = rng.choice(n - 6, 25, replace=False)
    a = base.copy()
    b = 5 + 0.8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.1, n)
    for e in ups:
        a[e : e + 4] += 8
        b[e : e + 4] += 6
    for e in downs:
        a[e : e + 4] -= 8
        b[e : e + 4] -= 6
    return a, b


class TestClause:
    def test_validation(self):
        with pytest.raises(QueryError):
            Clause(min_score=1.5)
        with pytest.raises(QueryError):
            Clause(min_strength=-0.1)
        with pytest.raises(QueryError):
            Clause(alpha=0.0)
        with pytest.raises(QueryError):
            Clause(feature_types=("weird",))

    def test_admits_resolution(self):
        clause = Clause(temporal=(TemporalResolution.DAY,))
        assert clause.admits_resolution(SpatialResolution.CITY, TemporalResolution.DAY)
        assert not clause.admits_resolution(
            SpatialResolution.CITY, TemporalResolution.HOUR
        )


class TestRelation:
    def test_planted_relationship_found(self):
        a, b = correlated_series()
        report = relation(
            make_indexed("da", a), make_indexed("db", b), n_permutations=200, seed=0
        )
        assert report.n_evaluated >= 1
        assert report.n_significant >= 1
        result = report.results[0]
        assert result.score > 0.5
        assert result.p_value <= 0.05

    def test_independent_functions_pruned(self):
        a, _ = correlated_series(seed=3)
        b, _ = correlated_series(seed=11)
        report = relation(
            make_indexed("da", a), make_indexed("db", b), n_permutations=99, seed=1
        )
        assert report.n_significant <= report.n_evaluated
        for result in report.results:
            assert result.p_value <= 0.05  # anything surviving must have low p

    def test_same_dataset_rejected(self):
        a, _ = correlated_series()
        idx = make_indexed("same", a)
        with pytest.raises(DataError):
            relation(idx, idx)

    def test_clause_min_score_skips_pairs(self):
        a, b = correlated_series()
        strict = Clause(min_score=0.99)
        report = relation(
            make_indexed("da", a),
            make_indexed("db", b),
            clause=strict,
            n_permutations=99,
            seed=0,
        )
        for result in report.results:
            assert abs(result.score) >= 0.99

    def test_no_overlap_no_evaluation(self):
        a, b = correlated_series()
        r1 = make_indexed("da", a, step_offset=0)
        r2 = make_indexed("db", b, step_offset=10_000)
        report = relation(r1, r2, n_permutations=50)
        assert report.n_evaluated == 0

    def test_partial_overlap_alignment(self):
        a, b = correlated_series()
        r1 = make_indexed("da", a, step_offset=0)
        r2 = make_indexed("db", b[100:], step_offset=100)
        report = relation(r1, r2, n_permutations=150, seed=0)
        assert report.n_evaluated >= 1
        assert report.n_significant >= 1

    def test_custom_thresholds_via_clause(self):
        a, b = correlated_series()
        idx_a = make_indexed("da", a)
        idx_b = make_indexed("db", b)
        clause = Clause(thresholds={"da.v": (14.0, 6.0), "db.v": (8.0, 2.0)})
        report = relation(
            idx_a,
            idx_b,
            clause=clause,
            n_permutations=150,
            seed=0,
            extractor=FeatureExtractor(),
        )
        assert report.n_significant >= 1
        assert report.results[0].score > 0.5


def build_corpus(seed=0, n_hours=1200):
    """Two related data sets + one unrelated, all city/hour."""
    rng = np.random.default_rng(seed)
    ts = np.arange(n_hours, dtype=np.int64) * HOUR
    a, b = correlated_series(seed=seed, n=n_hours)
    noise, _ = correlated_series(seed=seed + 101, n=n_hours)

    def city_dataset(name, values):
        schema = DatasetSchema(
            name,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            numeric_attributes=("v",),
        )
        return Dataset(schema, timestamps=ts, numerics={"v": values})

    city = CityModel.synthetic(nbhd_grid=(3, 3), zip_grid=(2, 2))
    datasets = [
        city_dataset("alpha", a),
        city_dataset("beta", b),
        city_dataset("gamma", noise),
    ]
    return Corpus(datasets, city)


class TestCorpus:
    def test_duplicate_names_rejected(self):
        corpus = build_corpus()
        datasets = list(corpus.datasets.values())
        with pytest.raises(DataError):
            Corpus([datasets[0], datasets[0]], corpus.city)

    def test_build_index_materializes_viable_resolutions(self):
        index = build_corpus().build_index()
        alpha = index.dataset_index("alpha")
        keys = set(alpha.functions)
        # City-native hourly data: city spatial only; hour/day/week/month.
        assert (SpatialResolution.CITY, TemporalResolution.HOUR) in keys
        assert (SpatialResolution.CITY, TemporalResolution.DAY) in keys
        assert all(k[0] is SpatialResolution.CITY for k in keys)

    def test_resolution_whitelist(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        keys = set(index.dataset_index("alpha").functions)
        assert keys == {(SpatialResolution.CITY, TemporalResolution.HOUR)}

    def test_index_stats_counters(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        # 3 data sets x 2 functions (density + v) x 1 resolution.
        assert index.stats.n_scalar_functions == 6
        assert index.stats.n_feature_sets == 6
        assert index.stats.function_bytes > 0
        assert index.stats.feature_bytes > 0

    def test_query_finds_planted_pair_and_prunes_noise(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        result = index.query(n_permutations=200, seed=0)
        related = {(r.dataset1, r.dataset2) for r in result.results}
        assert any({"alpha", "beta"} == set(pair) for pair in related)
        assert result.n_significant < result.n_evaluated  # pruning happened

    def test_query_unknown_dataset_rejected(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        with pytest.raises(QueryError):
            index.query(["nope"])

    def test_query_deterministic_given_seed(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        r1 = index.query(n_permutations=99, seed=5)
        r2 = index.query(n_permutations=99, seed=5)
        assert [x.p_value for x in r1.results] == [x.p_value for x in r2.results]

    def test_query_pair_deduplication(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        result = index.query(["alpha", "beta"], ["alpha", "beta"], n_permutations=50)
        # Only the unordered pair (alpha, beta) is evaluated once.
        assert len(result.reports) == 1

    def test_query_result_helpers(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        result = index.query(n_permutations=200, seed=0)
        top = result.top(3)
        assert len(top) <= 3
        if len(top) >= 2:
            assert abs(top[0].score) >= abs(top[1].score)
        with pytest.raises(QueryError):
            result.top(3, by="magic")
        between = result.between("alpha", "beta")
        for r in between:
            assert {r.dataset1, r.dataset2} == {"alpha", "beta"}

    def test_describe_is_readable(self):
        index = build_corpus().build_index(temporal=(TemporalResolution.HOUR,))
        result = index.query(n_permutations=200, seed=0)
        if result.results:
            text = result.results[0].describe()
            assert "tau=" in text and "rho=" in text
