"""Tests for relationship score τ and strength ρ (§2.2, §2.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import FeatureSet
from repro.core.relationship import evaluate_features, score_from_masks
from repro.utils.errors import DataError


def fs(pos_idx, neg_idx, shape=(10, 1)):
    pos = np.zeros(shape, dtype=bool)
    neg = np.zeros(shape, dtype=bool)
    for i in pos_idx:
        pos[i] = True
    for i in neg_idx:
        neg[i] = True
    return FeatureSet(pos, neg)


class TestScore:
    def test_perfect_positive(self):
        a = fs([0, 1], [5])
        b = fs([0, 1], [5])
        m = evaluate_features(a, b)
        assert m.score == pytest.approx(1.0)
        assert m.strength == pytest.approx(1.0)
        assert m.n_related == 3

    def test_perfect_negative(self):
        a = fs([0, 1], [5])
        b = fs([5], [0, 1])
        m = evaluate_features(a, b)
        assert m.score == pytest.approx(-1.0)
        assert m.strength == pytest.approx(1.0)

    def test_mixed(self):
        # 2 positive relations, 1 negative -> tau = 1/3.
        a = fs([0, 1], [5])
        b = fs([0, 1, 5], [])
        m = evaluate_features(a, b)
        assert m.n_positive == 2
        assert m.n_negative == 1
        assert m.score == pytest.approx(1.0 / 3.0)

    def test_unrelated_score_zero(self):
        a = fs([0], [])
        b = fs([9], [])
        m = evaluate_features(a, b)
        assert m.n_related == 0
        assert m.score == 0.0
        assert not m.is_related

    def test_no_features_at_all(self):
        a = fs([], [])
        b = fs([], [])
        m = evaluate_features(a, b)
        assert m.score == 0.0
        assert m.strength == 0.0

    def test_misaligned_shapes_rejected(self):
        with pytest.raises(DataError):
            evaluate_features(fs([], [], (5, 1)), fs([], [], (6, 1)))


class TestStrength:
    def test_f1_uses_both_sides(self):
        # |Sigma1|=4, |Sigma2|=2, overlap 2 -> P=0.5, R=1.0, F1=2/3.
        a = fs([0, 1, 2, 3], [])
        b = fs([0, 1], [])
        m = evaluate_features(a, b)
        assert m.precision == pytest.approx(0.5)
        assert m.recall == pytest.approx(1.0)
        assert m.strength == pytest.approx(2 / 3)

    def test_strength_symmetric(self):
        a = fs([0, 1, 2, 3], [8])
        b = fs([0, 1], [8, 9])
        ab = evaluate_features(a, b)
        ba = evaluate_features(b, a)
        assert ab.strength == pytest.approx(ba.strength)
        assert ab.score == pytest.approx(ba.score)


class TestDegenerateOverlap:
    def test_point_in_both_channels_of_one_function(self):
        # Degenerate thresholds can make the same point positive AND
        # negative; tau must stay within [-1, 1] (Definitions 10/11 are
        # per-point disjunctions).
        a = fs([0], [0])
        b = fs([0], [0])
        m = evaluate_features(a, b)
        assert -1.0 <= m.score <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_bounds_and_symmetry(seed):
    rng = np.random.default_rng(seed)
    shape = (rng.integers(1, 20), rng.integers(1, 6))
    def random_fs():
        pos = rng.uniform(size=shape) < 0.3
        neg = (rng.uniform(size=shape) < 0.3) & ~pos
        return FeatureSet(pos, neg)
    a, b = random_fs(), random_fs()
    ab = evaluate_features(a, b)
    ba = evaluate_features(b, a)
    assert -1.0 <= ab.score <= 1.0
    assert 0.0 <= ab.strength <= 1.0
    assert ab.score == pytest.approx(ba.score)
    assert ab.strength == pytest.approx(ba.strength)
    assert ab.n_related <= min(ab.n_features_1, ab.n_features_2)
    assert ab.n_positive + ab.n_negative >= ab.n_related or True  # disjoint masks
    assert ab.n_positive <= ab.n_related
    assert ab.n_negative <= ab.n_related


def test_score_from_masks_matches_evaluate_features():
    rng = np.random.default_rng(0)
    pos1 = rng.uniform(size=(8, 3)) < 0.4
    neg1 = (rng.uniform(size=(8, 3)) < 0.4) & ~pos1
    pos2 = rng.uniform(size=(8, 3)) < 0.4
    neg2 = (rng.uniform(size=(8, 3)) < 0.4) & ~pos2
    direct = score_from_masks(pos1, neg1, pos2, neg2)
    wrapped = evaluate_features(FeatureSet(pos1, neg1), FeatureSet(pos2, neg2))
    assert direct == wrapped
