"""Tests for merge-tree construction and persistence pairing (§3.1, App. B.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge_tree import compute_join_tree, compute_split_tree
from repro.core.scalar_function import ScalarFunction
from repro.graph.domain_graph import DomainGraph
from repro.spatial.adjacency import grid_adjacency
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import TopologyError


def series(values):
    return ScalarFunction.time_series("t.f", np.asarray(values, dtype=float))


def local_maxima_1d(values):
    """Brute-force maxima under the (value, id) perturbation order."""
    out = []
    n = len(values)
    for i in range(n):
        higher = False
        for j in ([i - 1] if i > 0 else []) + ([i + 1] if i + 1 < n else []):
            if (values[j], j) > (values[i], i):
                higher = True
        if not higher:
            out.append(i)
    return sorted(out)


class TestPaperExample:
    """The running example of Fig. 2 / Fig. 4."""

    VALUES = [3.0, 6.0, 2.0, 5.0, 1.5, 4.0, 0.0, 7.0, 1.0]

    def test_join_tree_maxima(self):
        sf = series(self.VALUES)
        tree = compute_join_tree(sf.graph, sf.flat_values())
        assert sorted(tree.extrema.tolist()) == [1, 3, 5, 7]
        # Extrema are reported in sweep order: most extreme first.
        assert tree.extrema.tolist() == [7, 1, 3, 5]

    def test_join_tree_persistence_follows_elder_rule(self):
        sf = series(self.VALUES)
        tree = compute_join_tree(sf.graph, sf.flat_values())
        by_creator = {p.creator: p for p in tree.pairs}
        # Global max (v=7, f=7): essential pair spanning the full range.
        assert by_creator[7].persistence == pytest.approx(7.0)
        assert by_creator[7].destroyer == -1
        # Max at v=1 (f=6) dies at the deepest separating saddle v=6 (f=0).
        assert by_creator[1].destroyer == 6
        assert by_creator[1].persistence == pytest.approx(6.0)
        # Max at v=3 (f=5) dies at v=2 (f=2).
        assert by_creator[3].destroyer == 2
        assert by_creator[3].persistence == pytest.approx(3.0)
        # Max at v=5 (f=4) dies at v=4 (f=1.5).
        assert by_creator[5].destroyer == 4
        assert by_creator[5].persistence == pytest.approx(2.5)

    def test_split_tree_minima(self):
        sf = series(self.VALUES)
        tree = compute_split_tree(sf.graph, sf.flat_values())
        assert sorted(tree.extrema.tolist()) == [0, 2, 4, 6, 8]

    def test_root_is_global_extremum_of_opposite_kind(self):
        sf = series(self.VALUES)
        join = compute_join_tree(sf.graph, sf.flat_values())
        split = compute_split_tree(sf.graph, sf.flat_values())
        assert join.root == 6  # global minimum
        assert split.root == 7  # global maximum

    def test_persistence_of_vertex_lookup(self):
        sf = series(self.VALUES)
        tree = compute_join_tree(sf.graph, sf.flat_values())
        assert tree.persistence_of(3) == pytest.approx(3.0)
        with pytest.raises(TopologyError):
            tree.persistence_of(0)


class TestEdgeCases:
    def test_constant_function_has_one_extremum(self):
        sf = series([5.0] * 8)
        join = compute_join_tree(sf.graph, sf.flat_values())
        split = compute_split_tree(sf.graph, sf.flat_values())
        # Simulated perturbation makes exactly one maximum and one minimum.
        assert join.n_extrema == 1
        assert split.n_extrema == 1
        assert join.pairs[0].persistence == pytest.approx(0.0)

    def test_single_vertex_function(self):
        sf = series([1.0])
        tree = compute_join_tree(sf.graph, sf.flat_values())
        assert tree.n_extrema == 1
        assert tree.root == 0

    def test_monotone_function(self):
        sf = series([1.0, 2.0, 3.0, 4.0])
        join = compute_join_tree(sf.graph, sf.flat_values())
        assert join.extrema.tolist() == [3]
        assert join.pairs[0].persistence == pytest.approx(3.0)

    def test_empty_function_rejected(self):
        graph = DomainGraph(1, 1)
        with pytest.raises(TopologyError):
            compute_join_tree(graph, np.zeros(0))

    def test_ties_resolved_deterministically(self):
        sf = series([1.0, 2.0, 1.0, 2.0, 1.0])
        join = compute_join_tree(sf.graph, sf.flat_values())
        # Two plateaus at 2.0: both are maxima under perturbation.
        assert sorted(join.extrema.tolist()) == [1, 3]


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=60))
    def test_property_join_extrema_are_local_maxima(self, values):
        sf = series(values)
        tree = compute_join_tree(sf.graph, sf.flat_values())
        assert sorted(tree.extrema.tolist()) == local_maxima_1d(values)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=60))
    def test_property_persistence_nonnegative_and_bounded(self, values):
        sf = series(values)
        tree = compute_join_tree(sf.graph, sf.flat_values())
        rng_span = max(values) - min(values)
        for pers in tree.persistence_values():
            assert -1e-9 <= pers <= rng_span + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=40))
    def test_property_split_tree_mirrors_negated_join_tree(self, values):
        sf = series(values)
        split = compute_split_tree(sf.graph, sf.flat_values())
        # Minima of f are maxima of -f; persistences match.  (Tie-break order
        # differs between the two sweeps, so compare only when values are
        # distinct.)
        if len(set(values)) != len(values):
            return
        neg = series([-v for v in values])
        join_of_neg = compute_join_tree(neg.graph, neg.flat_values())
        assert sorted(split.extrema.tolist()) == sorted(join_of_neg.extrema.tolist())
        a = sorted(split.persistence_values().tolist())
        b = sorted(join_of_neg.persistence_values().tolist())
        assert np.allclose(a, b)


class TestGridDomains:
    def test_number_of_components_at_threshold_matches_tree(self):
        # A 2-regions x many-steps function with two clear peaks.
        pairs = grid_adjacency(2, 1)
        graph = DomainGraph(2, 30, pairs)
        rng = np.random.default_rng(5)
        values = rng.normal(0, 0.1, (30, 2))
        values[5, 0] += 5.0
        values[20, 1] += 4.0
        sf = ScalarFunction(
            "g.f",
            values,
            graph,
            spatial=SpatialResolution.NEIGHBORHOOD,
            temporal=TemporalResolution.HOUR,
        )
        tree = compute_join_tree(sf.graph, sf.flat_values())
        top = sorted(tree.persistence_values())[-2:]
        assert top[0] > 3.0  # both planted peaks are high-persistence

    def test_degenerate_saddle_merges_multiple_components(self):
        # Star-like region graph: center region adjacent to 4 others; peaks
        # on all leaves, deep pit in the center -> the center vertex merges
        # several components at once.
        pairs = np.array([[0, 1], [0, 2], [0, 3], [0, 4]])
        graph = DomainGraph(5, 1, pairs)
        values = np.array([[0.0, 5.0, 5.0, 5.0, 5.0]])
        sf = ScalarFunction(
            "star.f",
            values,
            graph,
            SpatialResolution.NEIGHBORHOOD,
            TemporalResolution.HOUR,
        )
        tree = compute_join_tree(sf.graph, sf.flat_values())
        assert tree.n_extrema == 4
        destroyers = [p.destroyer for p in tree.pairs]
        assert destroyers.count(0) == 3  # three non-elder creators die at 0
        assert destroyers.count(-1) == 1  # the elder survives
