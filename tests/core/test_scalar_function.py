"""Tests for the ScalarFunction wrapper (§2.1)."""

import numpy as np
import pytest

from repro.core.scalar_function import ScalarFunction
from repro.data.aggregation import FunctionSpec, aggregate
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.graph.domain_graph import DomainGraph
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError


class TestConstruction:
    def test_shape_must_match_graph(self):
        graph = DomainGraph(2, 3, np.array([[0, 1]]))
        with pytest.raises(DataError):
            ScalarFunction(
                "f",
                np.zeros((3, 3)),
                graph,
                SpatialResolution.NEIGHBORHOOD,
                TemporalResolution.HOUR,
            )

    def test_nan_rejected(self):
        graph = DomainGraph(1, 2)
        with pytest.raises(DataError):
            ScalarFunction(
                "f",
                np.array([[1.0], [np.nan]]),
                graph,
                SpatialResolution.CITY,
                TemporalResolution.HOUR,
            )

    def test_time_series_constructor(self):
        sf = ScalarFunction.time_series("a.v", [1.0, 2.0, 3.0])
        assert sf.n_regions == 1
        assert sf.n_steps == 3
        assert sf.graph.is_time_series
        assert sf.dataset == "a"

    def test_from_aggregated(self):
        schema = DatasetSchema(
            "d",
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
        )
        ds = Dataset(schema, timestamps=np.array([0, 3600, 7200]))
        (agg,) = aggregate(
            ds,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("d", "density")],
        )
        sf = ScalarFunction.from_aggregated(agg)
        assert sf.function_id == "d.density"
        assert sf.values[:, 0].tolist() == [1.0, 1.0, 1.0]
        assert np.array_equal(sf.graph.step_labels, agg.step_labels)


class TestVertexOrder:
    def test_descending_is_reverse_of_ascending(self):
        sf = ScalarFunction.time_series("t.f", [3.0, 1.0, 3.0, 2.0])
        desc = sf.vertex_order(descending=True)
        asc = sf.vertex_order(descending=False)
        assert desc.tolist() == asc[::-1].tolist()

    def test_ties_broken_by_vertex_id(self):
        sf = ScalarFunction.time_series("t.f", [1.0, 1.0, 1.0])
        assert sf.vertex_order(descending=False).tolist() == [0, 1, 2]
        assert sf.vertex_order(descending=True).tolist() == [2, 1, 0]


class TestSliceSteps:
    def test_contiguous_slice(self):
        sf = ScalarFunction.time_series("t.f", [0.0, 1.0, 2.0, 3.0, 4.0])
        sliced = sf.slice_steps(np.array([1, 2, 3]))
        assert sliced.values[:, 0].tolist() == [1.0, 2.0, 3.0]
        assert sliced.graph.step_labels.tolist() == [1, 2, 3]

    def test_non_contiguous_rejected(self):
        sf = ScalarFunction.time_series("t.f", [0.0, 1.0, 2.0])
        with pytest.raises(DataError):
            sf.slice_steps(np.array([0, 2]))

    def test_empty_rejected(self):
        sf = ScalarFunction.time_series("t.f", [0.0, 1.0])
        with pytest.raises(DataError):
            sf.slice_steps(np.array([], dtype=np.int64))


class TestNoise:
    def test_noise_bounded_by_iqr_fraction(self):
        rng_values = np.random.default_rng(0).normal(10, 2, 1000)
        sf = ScalarFunction.time_series("t.f", rng_values)
        level = 0.05
        noisy = sf.with_noise(level, seed=1)
        q1, q3 = np.percentile(sf.values, [25, 75])
        bound = level * (q3 - q1)
        assert np.abs(noisy.values - sf.values).max() <= bound + 1e-12

    def test_zero_level_is_identity(self):
        sf = ScalarFunction.time_series("t.f", [1.0, 5.0, 2.0])
        noisy = sf.with_noise(0.0, seed=0)
        assert np.array_equal(noisy.values, sf.values)

    def test_negative_level_rejected(self):
        sf = ScalarFunction.time_series("t.f", [1.0, 2.0])
        with pytest.raises(DataError):
            sf.with_noise(-0.1)

    def test_nbytes(self):
        sf = ScalarFunction.time_series("t.f", np.zeros(10))
        assert sf.nbytes() == 80
