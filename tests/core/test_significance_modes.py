"""Property tests for the batched/adaptive significance modes.

The contract (see :mod:`repro.core.significance`): ``batched`` returns
p-values bit-identical to the per-pair ``exact`` reference on every score
path; ``adaptive`` may stop permuting early but must reproduce every
``is_significant(alpha)`` decision, for any alpha it was run at.  Both
must hold across randomized pairs, seeds, and all three restricted
randomization methods — and at the query level, under every executor.
"""

import numpy as np
import pytest

from repro.core.corpus import Corpus
from repro.core.features import FeatureSet
from repro.core.significance import (
    SIGNIFICANCE_MODES,
    SignificanceRequest,
    significance_batch,
    significance_test,
)
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.graph.domain_graph import DomainGraph
from repro.spatial.adjacency import grid_adjacency
from repro.spatial.city import CityModel
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import DataError, QueryError


def random_pair(n_steps, n_regions, seed, grid=None, density=0.12, related=False):
    """One randomized feature-set pair + its domain graph."""
    rng = np.random.default_rng(seed)

    def features():
        pos = rng.uniform(size=(n_steps, n_regions)) < density
        neg = (rng.uniform(size=(n_steps, n_regions)) < density) & ~pos
        return FeatureSet(pos, neg)

    fs1 = features()
    fs2 = (
        FeatureSet(fs1.positive.copy(), fs1.negative.copy()) if related else features()
    )
    pairs = grid_adjacency(*grid) if grid else None
    graph = DomainGraph(n_regions, n_steps, pairs)
    return fs1, fs2, graph


def case_grid():
    """Randomized cases covering rotation, toroidal and torus3 paths."""
    cases = []
    for seed in range(5):
        cases.append((*random_pair(300, 1, seed), None))  # temporal rotation
    for seed in range(5):
        cases.append((*random_pair(60, 36, 50 + seed, grid=(6, 6)), None))
    for seed in range(3):
        cases.append(
            (
                *random_pair(60, 36, 80 + seed, grid=(6, 6)),
                "spatiotemporal_torus",
            )
        )
    for seed in range(2):  # planted relationships (significant side)
        cases.append((*random_pair(60, 36, 90 + seed, grid=(6, 6), related=True), None))
    return cases


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("alternative", ["two-sided", "greater", "less"])
    def test_batched_matches_exact_bitwise(self, alternative):
        cases = case_grid()
        exact = [
            significance_test(fs1, fs2, graph, 150, alternative, method, seed=11 + i)
            for i, (fs1, fs2, graph, method) in enumerate(cases)
        ]
        batched = significance_batch(
            [
                SignificanceRequest(fs1, fs2, graph, seed=11 + i, method=method)
                for i, (fs1, fs2, graph, method) in enumerate(cases)
            ],
            150,
            alternative,
            mode="batched",
        )
        for e, b in zip(exact, batched):
            assert b.p_value == e.p_value
            assert b.observed_score == e.observed_score
            assert b.n_permutations == e.n_permutations
            assert b.method == e.method
            assert b.mode == "batched"

    def test_singleton_api_matches_batch(self):
        fs1, fs2, graph = random_pair(60, 36, 7, grid=(6, 6))
        via_test = significance_test(fs1, fs2, graph, 100, seed=3, mode="batched")
        via_batch = significance_batch(
            [SignificanceRequest(fs1, fs2, graph, seed=3)], 100, mode="batched"
        )[0]
        assert via_test == via_batch

    def test_observed_override_matches_recompute(self):
        from repro.core.relationship import evaluate_features

        fs1, fs2, graph = random_pair(60, 36, 8, grid=(6, 6))
        observed = evaluate_features(fs1, fs2).score
        with_override = significance_batch(
            [SignificanceRequest(fs1, fs2, graph, seed=0, observed=observed)], 100
        )[0]
        without = significance_batch(
            [SignificanceRequest(fs1, fs2, graph, seed=0)], 100
        )[0]
        assert with_override == without


class TestAdaptiveDecisionIdentity:
    @pytest.mark.parametrize("alpha", [0.01, 0.05, 0.2, 0.5])
    def test_decisions_match_exact_at_alpha(self, alpha):
        cases = case_grid()
        exact = [
            significance_test(fs1, fs2, graph, 150, method=method, seed=11 + i)
            for i, (fs1, fs2, graph, method) in enumerate(cases)
        ]
        adaptive = significance_batch(
            [
                SignificanceRequest(fs1, fs2, graph, seed=11 + i, method=method)
                for i, (fs1, fs2, graph, method) in enumerate(cases)
            ],
            150,
            mode="adaptive",
            alpha=alpha,
        )
        for e, a in zip(exact, adaptive):
            assert a.is_significant(alpha) == e.is_significant(alpha)
            assert a.n_permutations <= e.n_permutations
            assert a.mode == "adaptive"

    def test_early_termination_engages(self):
        # Most null pairs must stop well short of the requested permutation
        # count — otherwise the adaptive mode is not actually adapting.
        cases = [(*random_pair(60, 36, 500 + s, grid=(6, 6)), None) for s in range(6)]
        adaptive = significance_batch(
            [
                SignificanceRequest(fs1, fs2, graph, seed=s)
                for s, (fs1, fs2, graph, _m) in enumerate(cases)
            ],
            400,
            mode="adaptive",
        )
        assert any(a.n_permutations < 400 for a in adaptive)

    def test_naive_method_stream(self):
        fs1, fs2, graph = random_pair(30, 16, 9, grid=(4, 4))
        exact = significance_test(fs1, fs2, graph, 80, method="naive", seed=5)
        batched = significance_test(
            fs1, fs2, graph, 80, method="naive", seed=5, mode="batched"
        )
        adaptive = significance_test(
            fs1, fs2, graph, 80, method="naive", seed=5, mode="adaptive"
        )
        assert batched.p_value == exact.p_value
        assert adaptive.is_significant() == exact.is_significant()

    def test_degenerate_spatial_falls_back_to_rotation(self):
        # n_regions == 1 with a spatial method: exact falls back to rotation
        # scores; the batch path must do the same, keeping the method label.
        fs1, fs2, graph = random_pair(200, 1, 12)
        for method in ("spatial_toroidal", "spatiotemporal_torus"):
            exact = significance_test(fs1, fs2, graph, 100, method=method, seed=2)
            batched = significance_test(
                fs1, fs2, graph, 100, method=method, seed=2, mode="batched"
            )
            assert batched.p_value == exact.p_value
            assert batched.method == exact.method == method


class TestEffectivePermutationCounts:
    def test_rotation_exhaustive_fallback_reported(self):
        # 10 steps admit only 9 distinct non-trivial rotations: every mode
        # must evaluate and report the full population, not the request.
        fs1, fs2, graph = random_pair(10, 1, 0)
        for mode in SIGNIFICANCE_MODES:
            result = significance_test(fs1, fs2, graph, 500, seed=0, mode=mode)
            assert result.n_permutations == 9
        sampled = significance_test(fs1, fs2, graph, 5, seed=0)
        assert sampled.n_permutations == 5

    def test_rotation_modes_identical_even_adaptive(self):
        # The rotation path computes all shifts in one FFT pass, so adaptive
        # has nothing to truncate: all three modes agree bit-for-bit.
        fs1, fs2, graph = random_pair(300, 1, 3)
        results = [
            significance_test(fs1, fs2, graph, 150, seed=4, mode=mode)
            for mode in SIGNIFICANCE_MODES
        ]
        assert len({r.p_value for r in results}) == 1
        assert len({r.n_permutations for r in results}) == 1

    def test_batched_reports_full_count_on_toroidal(self):
        fs1, fs2, graph = random_pair(60, 36, 4, grid=(6, 6))
        result = significance_test(fs1, fs2, graph, 120, seed=0, mode="batched")
        assert result.n_permutations == 120


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        fs1, fs2, graph = random_pair(30, 1, 0)
        with pytest.raises(DataError):
            significance_test(fs1, fs2, graph, mode="quantum")
        with pytest.raises(DataError):
            significance_batch([SignificanceRequest(fs1, fs2, graph)], mode="exact")

    def test_batch_validates_requests(self):
        fs1, _fs2, graph = random_pair(30, 1, 0)
        other = random_pair(31, 1, 0)[0]
        with pytest.raises(DataError):
            significance_batch([SignificanceRequest(fs1, other, graph)])
        with pytest.raises(DataError):
            significance_batch([SignificanceRequest(fs1, fs1, graph, method="quantum")])
        with pytest.raises(DataError):
            significance_batch([SignificanceRequest(fs1, fs1, graph)], alternative="x")


HOUR = 3600


def small_corpus(seed=0, n_hours=600):
    """Three city/hour data sets: two related, one noise (like §6.2)."""
    rng = np.random.default_rng(seed)
    ts = np.arange(n_hours, dtype=np.int64) * HOUR
    t = np.arange(n_hours)
    base = 10 + 1.5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.2, n_hours)
    a = base.copy()
    b = 5 + 0.8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.1, n_hours)
    for e in rng.choice(n_hours - 6, 15, replace=False):
        a[e : e + 4] += 8
        b[e : e + 4] += 6
    for e in rng.choice(n_hours - 6, 15, replace=False):
        a[e : e + 4] -= 8
        b[e : e + 4] -= 6
    noise = 10 + rng.normal(0, 1.0, n_hours)

    def city_dataset(name, values):
        schema = DatasetSchema(
            name,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            numeric_attributes=("v",),
        )
        return Dataset(schema, timestamps=ts, numerics={"v": values})

    city = CityModel.synthetic(nbhd_grid=(3, 3), zip_grid=(2, 2))
    return Corpus(
        [
            city_dataset("alpha", a),
            city_dataset("beta", b),
            city_dataset("gamma", noise),
        ],
        city,
    )


class TestQueryModesAcrossExecutors:
    """Query-level mode guarantees must survive every executor."""

    @pytest.fixture(scope="class")
    def index(self):
        return small_corpus().build_index(temporal=(TemporalResolution.HOUR,))

    @pytest.fixture(params=("thread", "process", "cluster"))
    def parallel_kwargs(self, request):
        if request.param == "cluster":
            return {"engine": request.getfixturevalue("cluster_engine")}
        return {"n_workers": 4, "executor": request.param}

    @staticmethod
    def rows(result):
        return [
            (x.function1, x.function2, x.feature_type, x.score, x.p_value)
            for x in result.results
        ]

    @staticmethod
    def decisions(result):
        return [
            (x.function1, x.function2, x.feature_type, x.score)
            for x in result.results
        ]

    def test_modes_bit_stable_across_executors(self, index, parallel_kwargs):
        for mode in ("batched", "adaptive"):
            serial = index.query(n_permutations=120, seed=0, significance_mode=mode)
            parallel = index.query(
                n_permutations=120, seed=0, significance_mode=mode, **parallel_kwargs
            )
            assert self.rows(serial) == self.rows(parallel)
            assert serial.n_evaluated == parallel.n_evaluated
            assert serial.n_candidates == parallel.n_candidates

    def test_adaptive_decisions_match_exact_under_executor(
        self, index, parallel_kwargs
    ):
        exact = index.query(n_permutations=120, seed=0)
        adaptive = index.query(
            n_permutations=120, seed=0, significance_mode="adaptive", **parallel_kwargs
        )
        assert self.decisions(exact) == self.decisions(adaptive)
        assert exact.n_significant == adaptive.n_significant
        assert exact.n_significant >= 1  # the planted pair survives

    def test_batched_bit_identical_to_exact_serial(self, index):
        exact = index.query(n_permutations=120, seed=0)
        batched = index.query(n_permutations=120, seed=0, significance_mode="batched")
        assert self.rows(exact) == self.rows(batched)
        assert exact.significance_mode == "exact"
        assert batched.significance_mode == "batched"

    def test_unknown_query_mode_rejected(self, index):
        with pytest.raises(QueryError):
            index.query(n_permutations=10, significance_mode="quantum")
