"""Shared fixtures for the incremental-maintenance suite.

The base scenario: a small two-data-set index (taxi + weather, city
resolution, day + hour) built and saved once per session, then copied into
a private directory per test so mutations never leak.  Mutation material —
a longer taxi data set and a citibike data set — comes from the same
deterministic simulation (the synthetic city model is independent of
``n_days``, so mixing data sets across generations keeps one coherent
city).
"""

import shutil

import pytest
from _helpers import RES_KWARGS

from repro.core.corpus import Corpus
from repro.synth import nyc_urban_collection

_SEED, _DAYS, _SCALE = 5, 10, 0.15


@pytest.fixture(scope="session")
def base_collection():
    """taxi + weather over 10 days (the index's original inputs)."""
    return nyc_urban_collection(
        seed=_SEED, n_days=_DAYS, scale=_SCALE, subset=("taxi", "weather")
    )


@pytest.fixture(scope="session")
def extended_taxi():
    """The taxi data set with 4 more days appended (same seed, same city)."""
    coll = nyc_urban_collection(
        seed=_SEED, n_days=_DAYS + 4, scale=_SCALE, subset=("taxi",)
    )
    return coll.dataset("taxi")


@pytest.fixture(scope="session")
def citibike():
    """A data set the base index has never seen."""
    coll = nyc_urban_collection(
        seed=_SEED, n_days=_DAYS, scale=_SCALE, subset=("citibike",)
    )
    return coll.dataset("citibike")


@pytest.fixture(scope="session")
def base_corpus(base_collection):
    return Corpus(base_collection.datasets, base_collection.city)


@pytest.fixture(scope="session")
def base_index_dir(base_corpus, tmp_path_factory):
    """The pristine saved base index (session-scoped: copy, never mutate)."""
    path = tmp_path_factory.mktemp("incremental-base") / "idx"
    base_corpus.build_index(**RES_KWARGS).save(path)
    return path


@pytest.fixture()
def index_copy(base_index_dir, tmp_path):
    """A private, mutable copy of the base index for one test."""
    target = tmp_path / "idx"
    shutil.copytree(base_index_dir, target)
    return target


@pytest.fixture(params=["thread", "process", "cluster"])
def update_engine(request):
    """Engines the applier must behave identically on.

    The cluster case reuses the session-scoped 2-host localhost cluster;
    ``getfixturevalue`` keeps it lazy so thread/process runs never spawn
    workers.
    """
    if request.param == "cluster":
        return request.getfixturevalue("cluster_engine")
    from repro.mapreduce.engine import LocalEngine

    return LocalEngine(n_workers=2, executor=request.param)
