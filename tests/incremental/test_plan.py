"""The diff planner: keep/rebuild/add/drop detection and dry-run rendering."""

import pytest
from _helpers import RES_KWARGS

from repro.core.corpus import Corpus
from repro.core.features import FeatureExtractor
from repro.incremental import plan_update
from repro.spatial.city import CityModel
from repro.utils.errors import PersistError


def _actions(plan):
    return {
        (e.dataset, e.spatial.value, e.temporal.value): e.action
        for e in plan.entries
    }


class TestPlanActions:
    def test_unchanged_catalog_is_a_noop(self, index_copy, base_corpus):
        plan = plan_update(index_copy, base_corpus, **RES_KWARGS)
        assert plan.counts == {"keep": 4, "rebuild": 0, "add": 0, "drop": 0}
        assert plan.is_noop
        assert all(e.reason == "fingerprint match" for e in plan.entries)

    def test_changed_dataset_rebuilds_only_its_partitions(
        self, index_copy, base_collection, extended_taxi
    ):
        corpus = Corpus(
            [extended_taxi, base_collection.dataset("weather")],
            base_collection.city,
        )
        plan = plan_update(index_copy, corpus, **RES_KWARGS)
        actions = _actions(plan)
        assert actions[("taxi", "city", "day")] == "rebuild"
        assert actions[("taxi", "city", "hour")] == "rebuild"
        assert actions[("weather", "city", "day")] == "keep"
        assert actions[("weather", "city", "hour")] == "keep"
        rebuilds = plan.by_action("rebuild")
        assert all(e.reason == "data set content or specs changed" for e in rebuilds)
        assert not plan.is_noop

    def test_new_dataset_adds_and_removed_dataset_drops(
        self, index_copy, base_collection, citibike
    ):
        corpus = Corpus(
            [base_collection.dataset("taxi"), citibike], base_collection.city
        )
        plan = plan_update(index_copy, corpus, **RES_KWARGS)
        actions = _actions(plan)
        assert actions[("citibike", "city", "day")] == "add"
        assert actions[("weather", "city", "day")] == "drop"
        assert actions[("taxi", "city", "day")] == "keep"
        assert plan.counts == {"keep": 2, "rebuild": 0, "add": 2, "drop": 2}

    def test_extractor_change_forces_full_rebuild(self, index_copy, base_collection):
        corpus = Corpus(
            base_collection.datasets,
            base_collection.city,
            extractor=FeatureExtractor(extreme_fence=2.5),
        )
        plan = plan_update(index_copy, corpus, **RES_KWARGS)
        assert plan.counts["rebuild"] == 4
        assert all(
            e.reason == "extractor/fill configuration changed"
            for e in plan.by_action("rebuild")
        )

    def test_city_change_forces_full_rebuild(self, index_copy, base_collection):
        corpus = Corpus(base_collection.datasets, CityModel.synthetic(nbhd_grid=(6, 6)))
        plan = plan_update(index_copy, corpus, **RES_KWARGS)
        assert plan.counts["rebuild"] == 4
        assert all(e.reason == "city model changed" for e in plan.by_action("rebuild"))

    def test_seq_shift_alone_is_not_a_noop(self, index_copy, base_collection):
        # Reversing the data set order keeps every fingerprint but moves
        # every partition to a new slot: the manifest (and file names) must
        # be rewritten, so the plan cannot claim no-op.
        corpus = Corpus(
            [base_collection.dataset("weather"), base_collection.dataset("taxi")],
            base_collection.city,
        )
        plan = plan_update(index_copy, corpus, **RES_KWARGS)
        assert plan.counts == {"keep": 4, "rebuild": 0, "add": 0, "drop": 0}
        assert not plan.is_noop

    def test_narrowed_whitelist_drop_names_the_real_reason(
        self, index_copy, base_corpus
    ):
        """`--temporal day` on a day+hour index deletes the hour
        partitions; the plan must say the resolution was narrowed, not
        pretend the data set left the catalog."""
        plan = plan_update(
            index_copy,
            base_corpus,
            spatial=RES_KWARGS["spatial"],
            temporal=(RES_KWARGS["temporal"][0],),  # day only
        )
        drops = plan.by_action("drop")
        assert {e.temporal.value for e in drops} == {"hour"}
        assert all(e.reason == "resolution no longer maintained" for e in drops)

    def test_missing_index_raises_persist_error(self, tmp_path, base_corpus):
        with pytest.raises(PersistError, match="no index.json"):
            plan_update(tmp_path / "nowhere", base_corpus, **RES_KWARGS)


class TestPlanRendering:
    def test_describe_lists_every_partition_and_counts(
        self, index_copy, base_collection, citibike
    ):
        corpus = Corpus(
            [base_collection.dataset("taxi"), citibike], base_collection.city
        )
        text = plan_update(index_copy, corpus, **RES_KWARGS).describe()
        assert str(index_copy) in text
        for verb in ("keep", "add", "drop"):
            assert verb in text
        assert "citibike" in text and "weather" in text
        assert "6 partitions: 2 keep, 0 rebuild, 2 add, 2 drop" in text

    def test_noop_describe_says_up_to_date(self, index_copy, base_corpus):
        text = plan_update(index_copy, base_corpus, **RES_KWARGS).describe()
        assert "nothing to do" in text
