"""The subsystem's contract, asserted per executor.

Property: for randomized catalog mutations — append days to a data set, add
a data set, drop a data set, change the extractor config — ``repro
update`` produces an index **bit-identical** to a from-scratch
``build_index`` + ``save`` of the mutated catalog (partition bytes exactly;
manifest up to wall-clock timings; query results exactly), on the thread,
process and cluster executors alike.  Unchanged partitions are *proven*
untouched: their reuse is counted in the ``UpdateReport`` and their NPZ
files keep inode and mtime through the update.
"""

import json
import shutil

import numpy as np
import pytest
from _helpers import (
    RES_KWARGS,
    assert_index_dirs_bit_identical,
    assert_query_results_equal,
    file_identities,
)

from repro.core.corpus import Corpus, CorpusIndex
from repro.core.features import FeatureExtractor
from repro.incremental import apply_update, plan_update

#: Catalog mutations the generator draws from.  Each op maps
#: (datasets dict, extractor) -> (datasets dict, extractor, description).
def _op_append_days(datasets, extractor, material):
    datasets = dict(datasets, taxi=material["extended_taxi"])
    return datasets, extractor, "append days to taxi"


def _op_add_dataset(datasets, extractor, material):
    datasets = dict(datasets, citibike=material["citibike"])
    return datasets, extractor, "add citibike"


def _op_drop_dataset(datasets, extractor, material):
    datasets = dict(datasets)
    victim = "weather" if "weather" in datasets else sorted(datasets)[-1]
    datasets.pop(victim)
    return datasets, extractor, f"drop {victim}"


def _op_change_extractor(datasets, extractor, material):
    fence = 2.5 if extractor.extreme_fence != 2.5 else 3.0
    return datasets, FeatureExtractor(extreme_fence=fence), "change extractor"


_OPS = {
    "append_days": _op_append_days,
    "add_dataset": _op_add_dataset,
    "drop_dataset": _op_drop_dataset,
    "change_extractor": _op_change_extractor,
}


@pytest.mark.parametrize("seed", [11, 29])
def test_randomized_mutations_update_equals_rebuild(
    seed,
    update_engine,
    base_collection,
    base_index_dir,
    extended_taxi,
    citibike,
    tmp_path,
):
    rng = np.random.default_rng(seed)
    ops = list(rng.choice(sorted(_OPS), size=2, replace=False))

    material = {"extended_taxi": extended_taxi, "citibike": citibike}
    datasets = {ds.name: ds for ds in base_collection.datasets}
    extractor = FeatureExtractor()
    applied = []
    for name in ops:
        datasets, extractor, description = _OPS[name](datasets, extractor, material)
        applied.append(description)

    corpus = Corpus(list(datasets.values()), base_collection.city, extractor=extractor)
    index_dir = tmp_path / "idx"
    shutil.copytree(base_index_dir, index_dir)

    plan = plan_update(index_dir, corpus, **RES_KWARGS)
    keeps = [e.old_record["file"] for e in plan.by_action("keep")]
    if "change_extractor" in ops:
        # Config changes invalidate every fingerprint: full rebuild.
        assert plan.counts["keep"] == 0
    before = file_identities(index_dir, keeps)

    report = apply_update(
        index_dir, corpus, **RES_KWARGS, engine=update_engine, plan=plan
    )
    assert report.applied, f"mutations: {applied}"
    assert report.n_reused == len(keeps)

    # Reused partitions were never rewritten: same inode, same mtime.
    manifest = json.loads((index_dir / "index.json").read_text())
    kept_now = {
        r["file"]
        for r in manifest["partitions"]
        if any(
            e.dataset == r["dataset"]
            and e.spatial.value == r["spatial"]
            and e.temporal.value == r["temporal"]
            for e in plan.by_action("keep")
        )
    }
    # Files may have been renamed (seq shift), so compare identity multisets:
    # every kept file's inode + mtime survives the update unchanged.
    assert sorted(i for i, _m in before.values()) == sorted(
        (index_dir / f).stat().st_ino for f in kept_now
    )
    assert sorted(m for _i, m in before.values()) == sorted(
        (index_dir / f).stat().st_mtime_ns for f in kept_now
    )

    # The invariant: bit-identical to a from-scratch rebuild (reference
    # built serially — every executor has its own equivalence suite).
    scratch = tmp_path / "scratch"
    corpus.build_index(**RES_KWARGS).save(scratch)
    assert_index_dirs_bit_identical(index_dir, scratch)

    updated = CorpusIndex.load(index_dir)
    rebuilt = CorpusIndex.load(scratch)
    assert_query_results_equal(
        updated.query(n_permutations=20, seed=0),
        rebuilt.query(n_permutations=20, seed=0),
    )


def test_consecutive_updates_stay_bit_identical(
    update_engine,
    base_collection,
    base_index_dir,
    extended_taxi,
    citibike,
    tmp_path,
):
    """Two updates in a row (append days, then add + drop) land exactly
    where one from-scratch build of the final catalog lands."""
    index_dir = tmp_path / "idx"
    shutil.copytree(base_index_dir, index_dir)

    corpus1 = Corpus(
        [extended_taxi, base_collection.dataset("weather")],
        base_collection.city,
    )
    report1 = apply_update(index_dir, corpus1, **RES_KWARGS, engine=update_engine)
    assert report1.n_rebuilt == 2 and report1.n_reused == 2

    corpus2 = Corpus([extended_taxi, citibike], base_collection.city)
    report2 = apply_update(index_dir, corpus2, **RES_KWARGS, engine=update_engine)
    assert report2.n_added == 2 and report2.n_dropped == 2
    assert report2.n_reused == 2  # taxi partitions survive both rounds

    scratch = tmp_path / "scratch"
    corpus2.build_index(**RES_KWARGS).save(scratch)
    assert_index_dirs_bit_identical(index_dir, scratch)
