"""Content fingerprints: stable for identical inputs, sensitive to any change."""

import numpy as np
from _helpers import RES_KWARGS

from repro.core.corpus import Corpus
from repro.core.features import FeatureExtractor
from repro.data.aggregation import FunctionSpec
from repro.incremental import (
    city_digest,
    config_digest,
    dataset_digest,
    fingerprints_for_inputs,
    specs_digest,
)
from repro.spatial.city import CityModel
from repro.synth import nyc_urban_collection


class TestDatasetDigest:
    def test_identical_generations_hash_alike(self, base_collection):
        again = nyc_urban_collection(
            seed=5, n_days=10, scale=0.15, subset=("taxi", "weather")
        )
        for name in ("taxi", "weather"):
            assert dataset_digest(base_collection.dataset(name)) == dataset_digest(
                again.dataset(name)
            )

    def test_appended_records_change_the_digest(self, base_collection, extended_taxi):
        assert dataset_digest(base_collection.dataset("taxi")) != dataset_digest(
            extended_taxi
        )

    def test_single_value_edit_changes_the_digest(self, base_collection):
        taxi = base_collection.dataset("taxi")
        digest = dataset_digest(taxi)
        column = next(iter(taxi.numerics))
        original = taxi.numerics[column][0]
        taxi.numerics[column][0] = original + 1.0
        try:
            assert dataset_digest(taxi) != digest
        finally:
            taxi.numerics[column][0] = original
        assert dataset_digest(taxi) == digest

    def test_different_datasets_hash_differently(self, base_collection):
        assert dataset_digest(base_collection.dataset("taxi")) != dataset_digest(
            base_collection.dataset("weather")
        )


class TestConfigAndCityDigests:
    def test_extractor_knobs_and_fill_are_config(self):
        base = config_digest(FeatureExtractor(), "global_mean")
        assert config_digest(FeatureExtractor(), "global_mean") == base
        assert config_digest(FeatureExtractor(extreme_fence=2.5), "global_mean") != base
        assert config_digest(FeatureExtractor(), "zero") != base

    def test_city_digest_sees_layout_changes(self, base_collection):
        base = city_digest(base_collection.city)
        assert city_digest(base_collection.city) == base
        assert city_digest(CityModel.synthetic(nbhd_grid=(6, 6))) != base

    def test_specs_digest_is_order_sensitive(self):
        # Spec order fixes function order inside the partition file, so a
        # reorder is a content change, not a cosmetic one.
        a = FunctionSpec(dataset="taxi", kind="density")
        b = FunctionSpec(dataset="taxi", kind="attribute", attribute="fare")
        assert specs_digest([a, b]) != specs_digest([b, a])
        assert specs_digest([a, b]) == specs_digest([a, b])


class TestPartitionFingerprints:
    def test_covers_every_partition_input(self, base_corpus):
        inputs = base_corpus.partition_inputs(**RES_KWARGS)
        fingerprints = fingerprints_for_inputs(
            inputs, base_corpus.city, base_corpus.extractor, base_corpus.fill
        )
        assert set(fingerprints) == {key for key, _value in inputs}
        assert all(len(f) == 64 for f in fingerprints.values())
        # Same data set, different resolution -> different fingerprint.
        assert len(set(fingerprints.values())) == len(fingerprints)

    def test_build_index_records_matching_fingerprints(self, base_corpus):
        index = base_corpus.build_index(**RES_KWARGS)
        inputs = base_corpus.partition_inputs(**RES_KWARGS)
        assert index.partition_fingerprints == fingerprints_for_inputs(
            inputs, base_corpus.city, base_corpus.extractor, base_corpus.fill
        )

    def test_config_change_moves_every_fingerprint(self, base_collection):
        corpus1 = Corpus(base_collection.datasets, base_collection.city)
        corpus2 = Corpus(
            base_collection.datasets,
            base_collection.city,
            extractor=FeatureExtractor(extreme_fence=2.5),
        )
        f1 = fingerprints_for_inputs(
            corpus1.partition_inputs(**RES_KWARGS),
            corpus1.city,
            corpus1.extractor,
            corpus1.fill,
        )
        f2 = fingerprints_for_inputs(
            corpus2.partition_inputs(**RES_KWARGS),
            corpus2.city,
            corpus2.extractor,
            corpus2.fill,
        )
        assert set(f1) == set(f2)
        assert all(f1[key] != f2[key] for key in f1)

    def test_object_dtype_columns_hash_stably(self):
        # Ragged identifier columns degrade to dtype=object; hashing must
        # not crash, must stay content-sensitive, and must see *type*
        # changes (1 vs "1") that str() would erase.
        from repro.incremental.fingerprint import _column_bytes

        col = np.array([("a", 1), "b", "c"], dtype=object)
        again = np.array([("a", 1), "b", "c"], dtype=object)
        other = np.array([("a", 2), "b", "c"], dtype=object)
        assert _column_bytes("k", col) == _column_bytes("k", again)
        assert _column_bytes("k", col) != _column_bytes("k", other)

        ints = np.array([1, 2, 3], dtype=object)
        strs = np.array(["1", "2", "3"], dtype=object)
        assert _column_bytes("k", ints) != _column_bytes("k", strs)
