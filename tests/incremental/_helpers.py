"""Plain helpers shared by the incremental-maintenance tests."""

import json

from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution

#: Resolution scope of every index in this suite (2 partitions per data set).
RES_KWARGS = dict(
    spatial=(SpatialResolution.CITY,),
    temporal=(TemporalResolution.DAY, TemporalResolution.HOUR),
)


def normalized_manifest(path) -> dict:
    """The manifest with run-specific wall-clock timings zeroed.

    Everything else — partition records, checksums, fingerprints, byte and
    function counts, city/extractor/fill — must be bit-identical between an
    incremental update and a from-scratch rebuild; only the two timing
    counters (and the digest signing them) legitimately differ between two
    runs of the *same* build.
    """
    manifest = json.loads((path / "index.json").read_text())
    manifest.pop("manifest_sha256")
    for stats in [manifest["stats"]] + [
        r["stats"] for r in manifest["partitions"] if "stats" in r
    ]:
        stats["scalar_seconds"] = 0.0
        stats["feature_seconds"] = 0.0
    return manifest


def assert_index_dirs_bit_identical(updated, rebuilt):
    """Updated index == from-scratch rebuild: manifest and partition bytes."""
    assert normalized_manifest(updated) == normalized_manifest(rebuilt)
    manifest = json.loads((updated / "index.json").read_text())
    for record in manifest["partitions"]:
        assert (updated / record["file"]).read_bytes() == (
            rebuilt / record["file"]
        ).read_bytes(), f"partition bytes differ: {record['file']}"


def assert_query_results_equal(r1, r2):
    """Two query results carry exactly the same relationships and counters."""
    assert (r1.n_evaluated, r1.n_candidates, r1.n_significant) == (
        r2.n_evaluated,
        r2.n_candidates,
        r2.n_significant,
    )

    def rows(result):
        return [
            (x.function1, x.function2, x.feature_type, x.score, x.strength,
             x.p_value, x.n_related, x.precision, x.recall)
            for x in result.results
        ]

    assert rows(r1) == rows(r2)


def file_identities(index_dir, files) -> dict:
    """``{file: (inode, mtime_ns)}`` — proof material for untouched reuse."""
    out = {}
    for name in files:
        stat = (index_dir / name).stat()
        out[name] = (stat.st_ino, stat.st_mtime_ns)
    return out
