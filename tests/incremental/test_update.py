"""Applier edge cases: no-op updates, drops, crashes, v1 indexes."""

import json

import pytest
from _helpers import (
    RES_KWARGS,
    assert_index_dirs_bit_identical,
    assert_query_results_equal,
    file_identities,
    normalized_manifest,
)

from repro.core.corpus import Corpus, CorpusIndex
from repro.incremental import apply_update, plan_update, update_index
from repro.persist import INDEX_MANIFEST
from repro.persist.format import manifest_digest
from repro.utils.errors import PersistError


def _all_files(index_dir):
    manifest = json.loads((index_dir / INDEX_MANIFEST).read_text())
    return [INDEX_MANIFEST] + [r["file"] for r in manifest["partitions"]]


class TestNoopUpdate:
    def test_empty_diff_rewrites_nothing(self, index_copy, base_corpus):
        """An up-to-date index is left byte-for-byte and inode-for-inode
        alone: not even the manifest is rewritten."""
        before = file_identities(index_copy, _all_files(index_copy))
        report = apply_update(index_copy, base_corpus, **RES_KWARGS)
        assert report.noop and report.applied
        assert report.bytes_rewritten == 0
        assert report.n_reused == 4
        assert report.bytes_reused > 0
        assert file_identities(index_copy, _all_files(index_copy)) == before
        # No staging/retired siblings linger either.
        assert [p.name for p in index_copy.parent.iterdir()] == [index_copy.name]

    def test_noop_report_describes_itself(self, index_copy, base_corpus):
        report = apply_update(index_copy, base_corpus, **RES_KWARGS)
        assert "up to date" in report.describe()


class TestDropDataset:
    def test_drop_removes_partitions_and_stats_contribution(
        self, index_copy, base_collection
    ):
        corpus = Corpus([base_collection.dataset("taxi")], base_collection.city)
        report = apply_update(index_copy, corpus, **RES_KWARGS)
        assert report.n_dropped == 2 and report.n_reused == 2

        manifest = json.loads((index_copy / INDEX_MANIFEST).read_text())
        assert manifest["datasets"] == ["taxi"]
        assert all(r["dataset"] == "taxi" for r in manifest["partitions"])
        # No orphaned NPZ files survive the drop.
        on_disk = sorted(p.name for p in (index_copy / "partitions").iterdir())
        listed = sorted(r["file"].split("/")[-1] for r in manifest["partitions"])
        assert on_disk == listed

        # The dropped data set's IndexStats contribution is gone too: the
        # updated counters equal a from-scratch build of the reduced corpus.
        rebuilt = corpus.build_index(**RES_KWARGS)
        stats = manifest["stats"]
        assert stats["n_scalar_functions"] == rebuilt.stats.n_scalar_functions
        assert stats["n_feature_sets"] == rebuilt.stats.n_feature_sets
        assert stats["function_bytes"] == rebuilt.stats.function_bytes
        assert stats["feature_bytes"] == rebuilt.stats.feature_bytes
        assert stats["raw_bytes"] == rebuilt.stats.raw_bytes

        loaded = CorpusIndex.load(index_copy)
        assert list(loaded.datasets) == ["taxi"]


class TestCrashSafety:
    def test_crash_before_swap_leaves_old_index_loadable(
        self, index_copy, base_collection, extended_taxi, monkeypatch
    ):
        """Everything up to the final directory swap is staged aside: a
        crash between partition writes and the manifest swap must leave the
        previous index fully intact and loadable."""
        baseline = CorpusIndex.load(index_copy).query(n_permutations=15, seed=0)
        before = file_identities(index_copy, _all_files(index_copy))

        import repro.incremental.update as update_module

        def explode(*_args, **_kwargs):
            raise RuntimeError("injected crash before the atomic swap")

        monkeypatch.setattr(update_module, "replace_directory", explode)
        corpus = Corpus(
            [extended_taxi, base_collection.dataset("weather")],
            base_collection.city,
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            apply_update(index_copy, corpus, **RES_KWARGS)

        # Old index: untouched, loadable, answering exactly as before.
        assert file_identities(index_copy, _all_files(index_copy)) == before
        after = CorpusIndex.load(index_copy).query(n_permutations=15, seed=0)
        assert_query_results_equal(baseline, after)

        # A subsequent (uninjected) update recovers, staging leftovers and
        # all, and lands on the from-scratch result.
        monkeypatch.undo()
        report = apply_update(index_copy, corpus, **RES_KWARGS)
        assert report.applied and report.n_rebuilt == 2
        scratch = index_copy.parent / "scratch"
        corpus.build_index(**RES_KWARGS).save(scratch)
        assert_index_dirs_bit_identical(index_copy, scratch)

    def test_missing_kept_partition_file_fails_cleanly(
        self, index_copy, base_corpus, base_collection, citibike
    ):
        manifest = json.loads((index_copy / INDEX_MANIFEST).read_text())
        (index_copy / manifest["partitions"][0]["file"]).unlink()
        corpus = Corpus(base_collection.datasets + [citibike], base_collection.city)
        with pytest.raises(PersistError, match="cannot reuse partition"):
            apply_update(index_copy, corpus, **RES_KWARGS)


def _downgrade_to_v1(index_dir):
    """Rewrite a v2 index's manifest as faithful format v1 (and re-sign)."""
    path = index_dir / INDEX_MANIFEST
    manifest = json.loads(path.read_text())
    manifest.pop("manifest_sha256")
    manifest.pop("fingerprints")
    manifest.pop("scope")
    manifest["format_version"] = 1
    for record in manifest["partitions"]:
        record.pop("fingerprint", None)
        record.pop("stats", None)
    manifest["manifest_sha256"] = manifest_digest(manifest)
    path.write_text(json.dumps(manifest))


class TestFormatV1Compatibility:
    def test_v1_index_still_loads(self, index_copy, base_corpus):
        reference = CorpusIndex.load(index_copy)
        _downgrade_to_v1(index_copy)
        loaded = CorpusIndex.load(index_copy)
        assert loaded.partition_fingerprints == {}
        assert loaded.partition_stats == {}
        assert_query_results_equal(
            reference.query(n_permutations=15, seed=0),
            loaded.query(n_permutations=15, seed=0),
        )

    def test_v1_index_updates_as_full_rebuild(self, index_copy, base_corpus):
        """No fingerprints -> reuse cannot be proven -> rebuild everything;
        the result is a v2 index bit-identical to a from-scratch build."""
        _downgrade_to_v1(index_copy)
        plan = plan_update(index_copy, base_corpus, **RES_KWARGS)
        assert plan.counts["rebuild"] == 4 and plan.counts["keep"] == 0
        assert all("format v1" in e.reason for e in plan.by_action("rebuild"))
        report = apply_update(index_copy, base_corpus, **RES_KWARGS, plan=plan)
        assert report.applied and report.n_rebuilt == 4
        scratch = index_copy.parent / "scratch"
        base_corpus.build_index(**RES_KWARGS).save(scratch)
        assert_index_dirs_bit_identical(index_copy, scratch)


class TestDryRunAndConvenience:
    def test_dry_run_writes_nothing(self, index_copy, base_collection, extended_taxi):
        before = file_identities(index_copy, _all_files(index_copy))
        corpus = Corpus(
            [extended_taxi, base_collection.dataset("weather")],
            base_collection.city,
        )
        report = CorpusIndex.update(index_copy, corpus, **RES_KWARGS, dry_run=True)
        assert not report.applied
        assert report.n_rebuilt == 2 and report.n_reused == 2
        assert file_identities(index_copy, _all_files(index_copy)) == before
        assert "rebuild" in report.describe()

    def test_corpus_index_update_applies(self, index_copy, base_collection,
                                         extended_taxi):
        corpus = Corpus(
            [extended_taxi, base_collection.dataset("weather")],
            base_collection.city,
        )
        report = CorpusIndex.update(index_copy, corpus, **RES_KWARGS)
        assert report.applied and report.n_rebuilt == 2
        scratch = index_copy.parent / "scratch"
        corpus.build_index(**RES_KWARGS).save(scratch)
        assert_index_dirs_bit_identical(index_copy, scratch)

    def test_update_index_equals_apply_update(self, index_copy, base_corpus):
        report = update_index(index_copy, base_corpus, **RES_KWARGS)
        assert report.noop and report.applied

    def test_zero_partition_dataset_changes_manifest_only(
        self, index_copy, base_collection
    ):
        """A data set with no viable partition under the whitelists still
        belongs to the manifest's data set list (exactly as build_index
        records it), so adding one is a manifest-only update."""
        from repro.synth import nyc_urban_collection

        # gas_prices is weekly-native: zero partitions under day/hour.
        extra = nyc_urban_collection(
            seed=5, n_days=10, scale=0.15, subset=("gas_prices",)
        ).dataset("gas_prices")
        corpus = Corpus(base_collection.datasets + [extra], base_collection.city)
        plan = plan_update(index_copy, corpus, **RES_KWARGS)
        assert plan.counts == {"keep": 4, "rebuild": 0, "add": 0, "drop": 0}
        assert not plan.is_noop  # the data set list changed
        report = apply_update(index_copy, corpus, **RES_KWARGS, plan=plan)
        assert report.applied
        manifest = json.loads((index_copy / INDEX_MANIFEST).read_text())
        assert manifest["datasets"] == ["taxi", "weather", "gas_prices"]
        scratch = index_copy.parent / "scratch"
        corpus.build_index(**RES_KWARGS).save(scratch)
        assert_index_dirs_bit_identical(index_copy, scratch)

    def test_zero_partition_dataset_growth_is_not_a_noop(
        self, base_collection, tmp_path
    ):
        """A data set with no viable partitions leaves no fingerprints to
        diff — but its size feeds the manifest's raw_bytes counter, so its
        growth must not be reported as 'up to date' (stale manifest)."""
        from repro.synth import nyc_urban_collection

        gas = nyc_urban_collection(
            seed=5, n_days=10, scale=0.15, subset=("gas_prices",)
        ).dataset("gas_prices")
        gas_grown = nyc_urban_collection(
            seed=5, n_days=24, scale=0.15, subset=("gas_prices",)
        ).dataset("gas_prices")
        corpus = Corpus(base_collection.datasets + [gas], base_collection.city)
        index_dir = tmp_path / "idx"
        corpus.build_index(**RES_KWARGS).save(index_dir)

        corpus2 = Corpus(base_collection.datasets + [gas_grown], base_collection.city)
        plan = plan_update(index_dir, corpus2, **RES_KWARGS)
        assert plan.counts == {"keep": 4, "rebuild": 0, "add": 0, "drop": 0}
        assert not plan.is_noop  # raw_bytes accounting changed
        report = apply_update(index_dir, corpus2, **RES_KWARGS, plan=plan)
        assert report.applied and report.bytes_rewritten > 0
        scratch = tmp_path / "scratch"
        corpus2.build_index(**RES_KWARGS).save(scratch)
        assert_index_dirs_bit_identical(index_dir, scratch)

    def test_config_change_with_zero_partitions_is_not_a_noop(
        self, base_collection, tmp_path
    ):
        """With no partitions there are no fingerprints to flip, but the
        manifest still records fill/extractor/city — a config change must
        rewrite it, not report 'up to date' and leave it stale."""
        from repro.synth import nyc_urban_collection

        gas = nyc_urban_collection(
            seed=5, n_days=10, scale=0.15, subset=("gas_prices",)
        ).dataset("gas_prices")  # weekly: zero partitions under day/hour
        corpus = Corpus([gas], base_collection.city)
        index_dir = tmp_path / "idx"
        corpus.build_index(**RES_KWARGS).save(index_dir)

        changed = Corpus([gas], base_collection.city, fill="zero")
        plan = plan_update(index_dir, changed, **RES_KWARGS)
        assert not plan.entries  # nothing to diff at the partition level
        assert not plan.is_noop  # ...but the recorded config changed
        apply_update(index_dir, changed, **RES_KWARGS, plan=plan)
        scratch = tmp_path / "scratch"
        changed.build_index(**RES_KWARGS).save(scratch)
        assert_index_dirs_bit_identical(index_dir, scratch)
        assert CorpusIndex.load(index_dir).fill == "zero"

    def test_scope_only_change_is_not_a_noop(self, base_collection, tmp_path):
        """Widening the whitelists without changing the partition set still
        rewrites the manifest: the recorded scope must track what was
        *asked for*, or later updates would maintain the wrong scope."""
        weather = base_collection.dataset("weather")  # city-viable only
        corpus = Corpus([weather], base_collection.city)
        index_dir = tmp_path / "idx"
        corpus.build_index(**RES_KWARGS).save(index_dir)

        temporal = RES_KWARGS["temporal"]
        plan = plan_update(index_dir, corpus, spatial=None, temporal=temporal)
        assert plan.counts == {"keep": 2, "rebuild": 0, "add": 0, "drop": 0}
        assert not plan.is_noop  # scope spatial=(city,) -> "all viable"
        apply_update(index_dir, corpus, spatial=None, temporal=temporal, plan=plan)
        scratch = tmp_path / "scratch"
        corpus.build_index(spatial=None, temporal=temporal).save(scratch)
        assert_index_dirs_bit_identical(index_dir, scratch)

    def test_normalized_manifest_helper_sees_real_differences(
        self, index_copy, base_index_dir
    ):
        # Guard the test helper itself: identical directories compare equal...
        assert normalized_manifest(index_copy) == normalized_manifest(base_index_dir)
        # ...and a genuine content difference is not normalized away.
        manifest = json.loads((index_copy / INDEX_MANIFEST).read_text())
        manifest["stats"]["n_scalar_functions"] += 1
        (index_copy / INDEX_MANIFEST).write_text(json.dumps(manifest))
        assert normalized_manifest(index_copy) != normalized_manifest(base_index_dir)
