"""End-to-end integration tests: the paper's headline behaviours.

These tests run the full framework (generation -> aggregation -> merge trees
-> thresholds -> features -> relationships -> restricted Monte Carlo) on
small synthetic collections and assert the *qualitative* results the paper
reports: planted relationships recovered with the right sign, spurious ones
pruned, correctness on replicated years, robustness to noise.
"""

import numpy as np
import pytest

from repro.core.corpus import Corpus
from repro.core.features import FeatureExtractor
from repro.core.relationship import evaluate_features
from repro.core.scalar_function import ScalarFunction
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution


@pytest.fixture(scope="module")
def urban_index():
    # A full simulated year: the sparse-feature relationships (storms,
    # hurricanes) need a long horizon before rotation nulls lose the chance
    # alignments, just like the paper's 2-5 year data sets.
    coll = nyc_urban_collection(
        seed=7,
        n_days=365,
        scale=1.0,
        subset=("taxi", "weather", "citibike", "collisions", "traffic_speed"),
    )
    corpus = Corpus(coll.datasets, coll.city)
    index = corpus.build_index(
        spatial=(SpatialResolution.CITY,),
        temporal=(TemporalResolution.HOUR, TemporalResolution.DAY),
    )
    return coll, index


@pytest.fixture(scope="module")
def urban_query(urban_index):
    _, index = urban_index
    return index.query(n_permutations=200, seed=0)


def find(results, f1, f2, temporal=None, feature_type=None):
    out = []
    for r in results:
        if {r.function1, r.function2} != {f1, f2}:
            continue
        if temporal is not None and r.temporal is not temporal:
            continue
        if feature_type is not None and r.feature_type != feature_type:
            continue
        out.append(r)
    return out


class TestPlantedRelationshipsRecovered:
    def test_precipitation_negatively_related_to_taxi_availability(self, urban_query):
        # The paper reports this for the number of taxis (and the unique
        # medallion count in §E.2); accept either channel.
        hits = find(
            urban_query.results, "taxi.density", "weather.avg.precipitation"
        ) + find(
            urban_query.results, "taxi.unique.medallion", "weather.avg.precipitation"
        )
        assert hits, "expected rain <-> taxi relationship to be found"
        assert min(r.score for r in hits) < 0

    def test_fare_positively_related_to_precipitation(self, urban_query):
        hits = find(urban_query.results, "taxi.avg.fare", "weather.avg.precipitation")
        assert hits
        assert max(r.score for r in hits) > 0

    def test_wind_speed_related_to_taxi_through_extreme_features(self, urban_index):
        # Paper §6.3: tau = -1 with low rho (taxi also drops on holidays,
        # which are unrelated to wind).  We assert the candidate relationship
        # directly; its Monte Carlo significance is marginal at a one-year
        # horizon because holiday drops give the rotation null legitimate
        # chance alignments (see EXPERIMENTS.md).
        _, index = urban_index
        key = (SpatialResolution.CITY, TemporalResolution.HOUR)
        taxi = {f.function_id: f for f in index.dataset_index("taxi").functions[key]}
        weather = {
            f.function_id: f for f in index.dataset_index("weather").functions[key]
        }
        fs1 = taxi["taxi.density"].feature_set("extreme")
        fs2 = weather["weather.avg.wind_speed"].feature_set("extreme")
        from repro.core.relationship import evaluate_features

        measures = evaluate_features(fs1, fs2)
        assert measures.is_related
        assert measures.score == pytest.approx(-1.0)
        assert measures.strength < 0.5  # diluted by holiday drops

    def test_wind_speed_not_salient_related_to_taxi(self, urban_index):
        # The same pair through *salient* features is weak (|tau| near 0):
        # ordinary wind does not move taxi demand (paper §6.3: 'not related
        # through salient features alone').
        _, index = urban_index
        key = (SpatialResolution.CITY, TemporalResolution.HOUR)
        taxi = {f.function_id: f for f in index.dataset_index("taxi").functions[key]}
        weather = {
            f.function_id: f for f in index.dataset_index("weather").functions[key]
        }
        fs1 = taxi["taxi.density"].feature_set("salient")
        fs2 = weather["weather.avg.wind_speed"].feature_set("salient")
        from repro.core.relationship import evaluate_features

        measures = evaluate_features(fs1, fs2)
        assert abs(measures.score) < 0.5

    def test_taxi_density_negatively_related_to_traffic_speed(self, urban_query):
        hits = find(urban_query.results, "taxi.density", "traffic_speed.avg.speed")
        assert hits
        assert min(r.score for r in hits) < 0

    def test_rain_increases_collision_severity_not_counts(self, urban_query):
        severity = find(
            urban_query.results,
            "collisions.avg.pedestrians_injured",
            "weather.avg.precipitation",
        ) + find(
            urban_query.results,
            "collisions.avg.motorists_killed",
            "weather.avg.precipitation",
        )
        assert severity
        assert max(r.score for r in severity) > 0


class TestPruning:
    def test_significant_set_is_small_fraction_of_evaluated(self, urban_query):
        assert urban_query.n_significant < 0.5 * urban_query.n_evaluated

    def test_taxi_tax_mostly_pruned(self, urban_query):
        # The flat tax attribute is noise: its apparent relationships with
        # weather must be pruned at a rate comparable to the nominal false-
        # positive level, i.e. the overwhelming majority do not survive.
        tax_weather_hits = [
            r
            for r in urban_query.results
            if "taxi.avg.tax" in (r.function1, r.function2)
            and {"taxi", "weather"} == {r.dataset1, r.dataset2}
        ]
        tax_weather_evaluations = 8 * 2 * 2  # weather attrs x channels x resolutions
        assert len(tax_weather_hits) / tax_weather_evaluations < 0.2


class TestCorrectnessTwoYears:
    """§6.2: two simulated 'years' of taxi data must be strongly related."""

    def test_replicated_years_strongly_positively_related(self):
        year1 = nyc_urban_collection(seed=21, n_days=56, scale=0.5, subset=("taxi",))
        year2 = nyc_urban_collection(seed=22, n_days=56, scale=0.5, subset=("taxi",))
        extractor = FeatureExtractor()

        def hourly_density(coll):
            from repro.data.aggregation import FunctionSpec, aggregate

            taxi = coll.dataset("taxi")
            (agg,) = aggregate(
                taxi,
                SpatialResolution.CITY,
                TemporalResolution.HOUR,
                specs=[FunctionSpec("taxi", "density")],
            )
            values = agg.values
            return ScalarFunction.time_series(
                "taxi.density",
                values[:, 0],
                TemporalResolution.HOUR,
                step_labels=np.arange(values.shape[0]),
            )

        f1 = hourly_density(year1)
        f2 = hourly_density(year2)
        n = min(f1.n_steps, f2.n_steps)
        fs1 = extractor.extract(f1).salient.slice_steps(0, n)
        fs2 = extractor.extract(f2).salient.slice_steps(0, n)
        measures = evaluate_features(fs1, fs2)
        # Same weekly/diurnal structure in both years -> strong positive
        # relationship (paper: tau = 0.99, rho = 0.85; our rho is much lower
        # because the synthetic features are event-dominated and the two
        # years draw independent events — see EXPERIMENTS.md §6.2).
        assert measures.score > 0.8
        assert measures.strength > 0.08


class TestRobustness:
    """§6.2 / Fig. 12: the relationship survives bounded Gaussian noise."""

    def test_noisy_function_stays_strongly_related_to_itself(self):
        coll = nyc_urban_collection(seed=7, n_days=56, scale=0.5, subset=("taxi",))
        from repro.data.aggregation import FunctionSpec, aggregate

        taxi = coll.dataset("taxi")
        (agg,) = aggregate(
            taxi,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            specs=[FunctionSpec("taxi", "density")],
        )
        sf = ScalarFunction.from_aggregated(agg)
        extractor = FeatureExtractor()
        clean = extractor.extract(sf).salient
        for level in (0.01, 0.02):
            noisy = extractor.extract(sf.with_noise(level, seed=int(level * 1000)))
            measures = evaluate_features(clean, noisy.salient)
            assert measures.score > 0.9, f"tau at noise {level}"
            assert measures.strength > 0.5, f"rho at noise {level}"


class TestMultiResolution:
    def test_relationships_can_differ_across_resolutions(self, urban_query):
        # At least one function pair must be significant at one temporal
        # resolution and absent at the other: the paper's multi-resolution
        # motivation.
        seen = {}
        for r in urban_query.results:
            key = (r.function1, r.function2, r.feature_type)
            seen.setdefault(key, set()).add(r.temporal)
        partial = [k for k, v in seen.items() if len(v) == 1]
        assert partial, "expected some resolution-specific relationships"
