"""Tests for temporal resolutions: bucketing and the Fig. 6 DAG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal.resolution import (
    EVALUATION_TEMPORAL,
    TemporalResolution,
    common_temporal_resolutions,
    viable_temporal_resolutions,
)

HOUR = 3600
DAY = 86400


class TestBucketing:
    def test_hour_buckets(self):
        ts = np.array([0, HOUR - 1, HOUR, 2 * HOUR])
        assert TemporalResolution.HOUR.bucket(ts).tolist() == [0, 0, 1, 2]

    def test_day_buckets(self):
        ts = np.array([0, DAY - 1, DAY])
        assert TemporalResolution.DAY.bucket(ts).tolist() == [0, 0, 1]

    def test_week_buckets(self):
        ts = np.array([0, 7 * DAY - 1, 7 * DAY])
        assert TemporalResolution.WEEK.bucket(ts).tolist() == [0, 0, 1]

    def test_month_buckets_follow_calendar(self):
        # 1970-01-31 23:59:59 is month 0; 1970-02-01 00:00:00 is month 1.
        jan31 = 31 * DAY - 1
        feb1 = 31 * DAY
        ts = np.array([0, jan31, feb1])
        assert TemporalResolution.MONTH.bucket(ts).tolist() == [0, 0, 1]

    def test_month_buckets_handle_leap_years(self):
        # 1972 was a leap year: Feb has 29 days.
        feb_1972 = int(np.datetime64("1972-02-29T12:00:00", "s").astype(np.int64))
        mar_1972 = int(np.datetime64("1972-03-01T00:00:00", "s").astype(np.int64))
        months = TemporalResolution.MONTH.bucket(np.array([feb_1972, mar_1972]))
        assert months[1] == months[0] + 1

    @pytest.mark.parametrize("res", list(TemporalResolution))
    def test_bucket_start_is_left_inverse(self, res):
        ts = np.array([0, 5 * DAY + 321, 400 * DAY + 7])
        buckets = res.bucket(ts)
        starts = res.bucket_start(buckets)
        assert np.array_equal(res.bucket(starts), buckets)
        assert (starts <= ts).all()

    def test_seconds_width(self):
        assert TemporalResolution.HOUR.seconds() == HOUR
        assert TemporalResolution.MONTH.seconds() == 30 * DAY


class TestDag:
    def test_second_converts_to_everything(self):
        for res in TemporalResolution:
            assert TemporalResolution.SECOND.convertible_to(res)

    def test_week_month_incompatible_both_ways(self):
        assert not TemporalResolution.WEEK.convertible_to(TemporalResolution.MONTH)
        assert not TemporalResolution.MONTH.convertible_to(TemporalResolution.WEEK)

    def test_coarse_never_converts_to_fine(self):
        assert not TemporalResolution.DAY.convertible_to(TemporalResolution.HOUR)
        assert not TemporalResolution.MONTH.convertible_to(TemporalResolution.DAY)

    def test_every_resolution_converts_to_itself(self):
        for res in TemporalResolution:
            assert res.convertible_to(res)

    def test_ordering(self):
        assert TemporalResolution.SECOND < TemporalResolution.HOUR < \
            TemporalResolution.DAY < TemporalResolution.WEEK < TemporalResolution.MONTH


class TestViableAndCommon:
    def test_viable_from_second(self):
        assert viable_temporal_resolutions(TemporalResolution.SECOND) == \
            EVALUATION_TEMPORAL

    def test_viable_from_week_excludes_month(self):
        assert viable_temporal_resolutions(TemporalResolution.WEEK) == \
            (TemporalResolution.WEEK,)

    def test_common_hour_vs_day(self):
        common = common_temporal_resolutions(
            TemporalResolution.HOUR, TemporalResolution.DAY
        )
        assert common == (
            TemporalResolution.DAY,
            TemporalResolution.WEEK,
            TemporalResolution.MONTH,
        )

    def test_common_week_vs_month_is_empty(self):
        assert common_temporal_resolutions(
            TemporalResolution.WEEK, TemporalResolution.MONTH
        ) == ()

    def test_common_is_symmetric(self):
        for a in TemporalResolution:
            for b in TemporalResolution:
                assert common_temporal_resolutions(a, b) == \
                    common_temporal_resolutions(b, a)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2_000_000_000))
def test_property_buckets_are_monotone(ts):
    later = ts + 12345
    for res in TemporalResolution:
        b0 = res.bucket(np.array([ts]))[0]
        b1 = res.bucket(np.array([later]))[0]
        assert b1 >= b0
