"""Tests for seasonal-interval segmentation (§3.3)."""

import numpy as np

from repro.temporal.intervals import interval_slices, seasonal_interval_ids
from repro.temporal.resolution import TemporalResolution


class TestSeasonalIntervalIds:
    def test_hourly_steps_group_by_month(self):
        # Hours spanning Jan and Feb 1970.
        hours = np.arange(0, 35 * 24)  # 35 days of hourly steps
        labels = seasonal_interval_ids(TemporalResolution.HOUR, hours)
        assert labels[0] == 0  # January 1970
        assert labels[-1] == 1  # February 1970
        # Exactly 31 days of January hours.
        assert int((labels == 0).sum()) == 31 * 24

    def test_daily_steps_group_by_quarter(self):
        days = np.arange(0, 200)  # Jan 1 .. mid-July 1970
        labels = seasonal_interval_ids(TemporalResolution.DAY, days)
        assert labels[0] == 0
        # Q1 1970 has 31+28+31 = 90 days.
        assert int((labels == 0).sum()) == 90

    def test_week_and_month_use_single_interval(self):
        for res in (TemporalResolution.WEEK, TemporalResolution.MONTH):
            labels = seasonal_interval_ids(res, np.arange(50))
            assert (labels == 0).all()


class TestIntervalSlices:
    def test_groups_preserve_order_and_partition(self):
        labels = np.array([3, 3, 5, 5, 5, 9])
        groups = interval_slices(labels)
        assert [g.tolist() for g in groups] == [[0, 1], [2, 3, 4], [5]]

    def test_single_label_single_group(self):
        groups = interval_slices(np.zeros(7, dtype=np.int64))
        assert len(groups) == 1
        assert groups[0].size == 7

    def test_groups_cover_everything_once(self):
        labels = seasonal_interval_ids(TemporalResolution.HOUR, np.arange(1500))
        groups = interval_slices(labels)
        combined = np.concatenate(groups)
        assert np.array_equal(np.sort(combined), np.arange(1500))
