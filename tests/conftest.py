"""Shared fixtures for the unit/integration suite."""

import pytest


@pytest.fixture(scope="session")
def cluster_engine():
    """A 2-host localhost cluster shared by the whole session.

    Lazy: the workers are only spawned when the first cluster-parametrized
    test runs.  Torn down (leak-free) at session end.  Tests that *break*
    their cluster on purpose (fault injection) must spawn their own via
    :func:`repro.distributed.local_cluster` instead of using this one.
    """
    from repro.distributed import local_cluster

    with local_cluster(2) as engine:
        yield engine
