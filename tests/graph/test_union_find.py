"""Tests for the union-find data structure."""

import numpy as np
import pytest

from repro.graph.union_find import UnionFind
from repro.utils.errors import DataError


class TestUnionFind:
    def test_initially_all_singletons(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(0, 1)
        assert uf.n_components == 2

    def test_find_returns_consistent_representative(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 3)
        reps = {uf.find(i) for i in range(4)}
        assert len(reps) == 1

    def test_negative_size_rejected(self):
        with pytest.raises(DataError):
            UnionFind(-1)

    def test_len(self):
        assert len(UnionFind(7)) == 7

    def test_random_unions_match_reference(self):
        rng = np.random.default_rng(0)
        n = 60
        uf = UnionFind(n)
        # Reference: naive label propagation.
        labels = list(range(n))
        for _ in range(100):
            a, b = rng.integers(0, n, 2)
            uf.union(int(a), int(b))
            la, lb = labels[a], labels[b]
            if la != lb:
                labels = [la if x == lb else x for x in labels]
        for i in range(n):
            for j in range(i + 1, n):
                assert uf.connected(i, j) == (labels[i] == labels[j])
