"""Tests for the spatio-temporal domain graph of §3.1."""

import numpy as np
import pytest

from repro.graph.domain_graph import DomainGraph
from repro.spatial.adjacency import grid_adjacency
from repro.utils.errors import DataError


class TestShape:
    def test_vertex_and_edge_counts_time_series(self):
        g = DomainGraph(1, 10)
        assert g.n_vertices == 10
        assert g.n_edges == 9  # a path
        assert g.is_time_series

    def test_vertex_and_edge_counts_grid(self):
        pairs = grid_adjacency(3, 3)  # 12 spatial pairs
        g = DomainGraph(9, 4, pairs)
        assert g.n_vertices == 36
        assert g.n_edges == 12 * 4 + 9 * 3
        assert not g.is_time_series

    def test_invalid_shapes_rejected(self):
        with pytest.raises(DataError):
            DomainGraph(0, 5)
        with pytest.raises(DataError):
            DomainGraph(2, 2, np.array([[0, 5]]))
        with pytest.raises(DataError):
            DomainGraph(1, 3, step_labels=np.arange(2))


class TestIndexing:
    def test_vertex_round_trip(self):
        g = DomainGraph(4, 5, grid_adjacency(2, 2))
        for region in range(4):
            for step in range(5):
                v = g.vertex(region, step)
                assert g.region_of(v) == region
                assert g.step_of(v) == step

    def test_vertex_out_of_range(self):
        g = DomainGraph(2, 2)
        with pytest.raises(DataError):
            g.vertex(2, 0)


class TestNeighbors:
    def test_time_series_neighbors(self):
        g = DomainGraph(1, 5)
        assert sorted(g.neighbors(0).tolist()) == [1]
        assert sorted(g.neighbors(2).tolist()) == [1, 3]
        assert sorted(g.neighbors(4).tolist()) == [3]

    def test_grid_neighbors_include_spatial_and_temporal(self):
        pairs = grid_adjacency(2, 2)
        g = DomainGraph(4, 3, pairs)
        # Vertex (region 0, step 1): spatial neighbors 1, 2; temporal +-4.
        v = g.vertex(0, 1)
        expected = {g.vertex(1, 1), g.vertex(2, 1), g.vertex(0, 0), g.vertex(0, 2)}
        assert set(g.neighbors(v).tolist()) == expected

    def test_neighbors_symmetric(self):
        pairs = grid_adjacency(3, 2)
        g = DomainGraph(6, 4, pairs)
        for v in range(g.n_vertices):
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_iter_edges_matches_neighbor_counts(self):
        pairs = grid_adjacency(2, 3)
        g = DomainGraph(6, 3, pairs)
        edges = list(g.iter_edges())
        assert len(edges) == g.n_edges
        assert len(set(edges)) == len(edges)  # no duplicates
        degree = np.zeros(g.n_vertices, dtype=int)
        for u, v in edges:
            assert u < v
            degree[u] += 1
            degree[v] += 1
        for v in range(g.n_vertices):
            assert degree[v] == g.neighbors(v).size

    def test_neighbor_lists_materialization(self):
        g = DomainGraph(2, 3, np.array([[0, 1]]))
        lists = g.neighbor_lists()
        for v in range(g.n_vertices):
            assert np.array_equal(np.sort(lists[v]), np.sort(g.neighbors(v)))
