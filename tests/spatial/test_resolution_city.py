"""Tests for the spatial-resolution DAG and the CityModel container."""

import numpy as np
import pytest

from repro.spatial.city import CityModel
from repro.spatial.regions import city_partition
from repro.spatial.resolution import (
    EVALUATION_SPATIAL,
    SpatialResolution,
    common_spatial_resolutions,
    viable_spatial_resolutions,
)
from repro.utils.errors import DataError


class TestSpatialDag:
    def test_gps_converts_to_everything(self):
        for res in SpatialResolution:
            assert SpatialResolution.GPS.convertible_to(res)

    def test_zip_neighborhood_incompatible(self):
        assert not SpatialResolution.ZIP.convertible_to(SpatialResolution.NEIGHBORHOOD)
        assert not SpatialResolution.NEIGHBORHOOD.convertible_to(SpatialResolution.ZIP)

    def test_middle_layers_convert_to_city_only(self):
        assert viable_spatial_resolutions(SpatialResolution.ZIP) == (
            SpatialResolution.ZIP,
            SpatialResolution.CITY,
        )

    def test_common_zip_vs_neighborhood_is_city(self):
        assert common_spatial_resolutions(
            SpatialResolution.ZIP, SpatialResolution.NEIGHBORHOOD
        ) == (SpatialResolution.CITY,)

    def test_common_gps_vs_gps_is_all(self):
        assert common_spatial_resolutions(
            SpatialResolution.GPS, SpatialResolution.GPS
        ) == EVALUATION_SPATIAL

    def test_ordering_is_total_for_iteration(self):
        ranks = [r.rank for r in SpatialResolution]
        assert len(set(ranks)) == len(ranks)


class TestCityModel:
    def test_synthetic_city_has_three_layers(self):
        city = CityModel.synthetic()
        assert set(city.available_resolutions()) == {
            SpatialResolution.ZIP,
            SpatialResolution.NEIGHBORHOOD,
            SpatialResolution.CITY,
        }

    def test_city_layer_required(self):
        with pytest.raises(DataError):
            CityModel("broken", regions={})

    def test_city_adjacency_defaults_empty(self):
        city = CityModel(
            "tiny", regions={SpatialResolution.CITY: city_partition(0, 0, 1, 1)}
        )
        assert city.spatial_pairs(SpatialResolution.CITY).shape == (0, 2)

    def test_unknown_layer_raises(self):
        city = CityModel(
            "tiny", regions={SpatialResolution.CITY: city_partition(0, 0, 1, 1)}
        )
        with pytest.raises(DataError):
            city.region_set(SpatialResolution.ZIP)

    def test_synthetic_adjacency_counts(self):
        city = CityModel.synthetic(nbhd_grid=(4, 4), zip_grid=(3, 3))
        nbhd_pairs = city.spatial_pairs(SpatialResolution.NEIGHBORHOOD)
        assert nbhd_pairs.shape[0] == 4 * 3 + 4 * 3
        zip_pairs = city.spatial_pairs(SpatialResolution.ZIP)
        assert zip_pairs.shape[0] == 3 * 2 + 3 * 2

    def test_layers_cover_same_extent(self):
        city = CityModel.synthetic()
        nbhd = city.region_set(SpatialResolution.NEIGHBORHOOD)
        zips = city.region_set(SpatialResolution.ZIP)
        assert nbhd.extent() == zips.extent()

    def test_zip_and_neighborhood_do_not_nest(self):
        city = CityModel.synthetic(nbhd_grid=(8, 8), zip_grid=(5, 5))
        nbhd = city.region_set(SpatialResolution.NEIGHBORHOOD)
        zips = city.region_set(SpatialResolution.ZIP)
        # Some neighborhood must straddle a zip boundary: locate its corners.
        straddles = False
        for poly in nbhd.polygons:
            corners_x = np.array([poly.bbox.xmin + 1e-6, poly.bbox.xmax - 1e-6])
            corners_y = np.array([poly.bbox.ymin + 1e-6, poly.bbox.ymin + 1e-6])
            cells = zips.locate(corners_x, corners_y)
            if cells[0] != cells[1]:
                straddles = True
                break
        assert straddles
