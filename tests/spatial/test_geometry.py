"""Tests for geometry primitives: polygons, containment, centroids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import BoundingBox, Polygon
from repro.utils.errors import DataError


class TestBoundingBox:
    def test_contains(self):
        box = BoundingBox(0, 0, 2, 3)
        assert box.contains(1, 1)
        assert box.contains(0, 0)  # boundary counts
        assert not box.contains(2.1, 1)

    def test_contains_many(self):
        box = BoundingBox(0, 0, 1, 1)
        xs = np.array([0.5, 1.5, -0.1])
        ys = np.array([0.5, 0.5, 0.5])
        assert box.contains_many(xs, ys).tolist() == [True, False, False]


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(DataError):
            Polygon([(0, 0), (1, 1)])

    def test_closed_ring_is_normalized(self):
        poly = Polygon([(0, 0), (1, 0), (1, 1), (0, 1), (0, 0)])
        assert len(poly) == 4

    def test_rectangle_contains_interior(self):
        rect = Polygon.rectangle(0, 0, 2, 1)
        assert rect.contains(1.0, 0.5)
        assert not rect.contains(2.5, 0.5)
        assert not rect.contains(1.0, 1.5)

    def test_rectangle_validation(self):
        with pytest.raises(DataError):
            Polygon.rectangle(0, 0, 0, 1)

    def test_concave_polygon_containment(self):
        # L-shaped polygon: the notch is outside.
        poly = Polygon([(0, 0), (2, 0), (2, 2), (1, 2), (1, 1), (0, 1)])
        assert poly.contains(0.5, 0.5)
        assert poly.contains(1.5, 1.5)
        assert not poly.contains(0.5, 1.5)  # in the notch

    def test_area_and_centroid_of_rectangle(self):
        rect = Polygon.rectangle(0, 0, 4, 2)
        assert rect.area() == pytest.approx(8.0)
        assert rect.centroid() == pytest.approx((2.0, 1.0))

    def test_centroid_orientation_independent(self):
        cw = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        ccw = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert cw.centroid() == pytest.approx(ccw.centroid())

    def test_edges_form_closed_ring(self):
        poly = Polygon([(0, 0), (1, 0), (0, 1)])
        edges = poly.edges()
        assert len(edges) == 3
        assert edges[-1][1] == edges[0][0]

    def test_contains_many_matches_scalar(self):
        poly = Polygon([(0, 0), (3, 0), (3, 3), (1.5, 1.2), (0, 3)])
        rng = np.random.default_rng(3)
        xs = rng.uniform(-1, 4, 200)
        ys = rng.uniform(-1, 4, 200)
        vector = poly.contains_many(xs, ys)
        scalar = np.array([poly.contains(x, y) for x, y in zip(xs, ys)])
        assert np.array_equal(vector, scalar)


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50),
    st.floats(min_value=0.1, max_value=20),
    st.floats(min_value=0.1, max_value=20),
)
def test_property_rectangle_containment_equals_bbox(x0, y0, w, h):
    rect = Polygon.rectangle(x0, y0, x0 + w, y0 + h)
    rng = np.random.default_rng(0)
    xs = rng.uniform(x0 - 1, x0 + w + 1, 50)
    ys = rng.uniform(y0 - 1, y0 + h + 1, 50)
    inside = rect.contains_many(xs, ys)
    # Interior points agree with the bbox test (boundary handling may differ
    # by the half-open rule, so compare strictly interior points only).
    in_x = (xs > x0 + 1e-9) & (xs < x0 + w - 1e-9)
    in_y = (ys > y0 + 1e-9) & (ys < y0 + h - 1e-9)
    strict = in_x & in_y
    assert np.array_equal(inside[strict], np.ones(int(strict.sum()), dtype=bool))
    out_x = (xs < x0 - 1e-9) | (xs > x0 + w + 1e-9)
    out_y = (ys < y0 - 1e-9) | (ys > y0 + h + 1e-9)
    outside = out_x | out_y
    assert not inside[outside].any()
