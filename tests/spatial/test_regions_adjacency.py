"""Tests for region partitions, point location and adjacency derivation."""

import numpy as np
import pytest

from repro.spatial.adjacency import (
    adjacency_from_rectangles,
    adjacency_from_shared_edges,
    grid_adjacency,
    neighbors_from_pairs,
)
from repro.spatial.regions import RegionSet, city_partition, grid_partition
from repro.utils.errors import DataError


class TestGridPartition:
    def test_cell_count_and_ids(self):
        grid = grid_partition(4, 3, 0, 0, 4, 3)
        assert len(grid) == 12
        assert grid.region_ids[0] == "cell_0_0"
        assert grid.region_ids[-1] == "cell_3_2"

    def test_invalid_dimensions(self):
        with pytest.raises(DataError):
            grid_partition(0, 3, 0, 0, 1, 1)
        with pytest.raises(DataError):
            grid_partition(2, 2, 0, 0, 0, 1)

    def test_extent(self):
        grid = grid_partition(2, 2, -1, -2, 3, 4)
        assert grid.extent() == (-1, -2, 3, 4)


class TestLocate:
    def test_interior_points_land_in_right_cell(self):
        grid = grid_partition(3, 2, 0, 0, 3, 2)
        xs = np.array([0.5, 1.5, 2.5, 0.5])
        ys = np.array([0.5, 0.5, 1.5, 1.5])
        # row-major: cell (i, j) -> j * nx + i
        assert grid.locate(xs, ys).tolist() == [0, 1, 5, 3]

    def test_outside_points_get_minus_one(self):
        grid = grid_partition(2, 2, 0, 0, 2, 2)
        assert grid.locate(np.array([5.0]), np.array([5.0])).tolist() == [-1]

    def test_locate_partitions_random_points(self):
        grid = grid_partition(5, 5, 0, 0, 5, 5)
        rng = np.random.default_rng(1)
        xs = rng.uniform(0.01, 4.99, 500)
        ys = rng.uniform(0.01, 4.99, 500)
        located = grid.locate(xs, ys)
        assert (located >= 0).all()
        expected = np.floor(ys).astype(int) * 5 + np.floor(xs).astype(int)
        assert np.array_equal(located, expected)

    def test_misaligned_inputs_rejected(self):
        grid = grid_partition(2, 2, 0, 0, 2, 2)
        with pytest.raises(DataError):
            grid.locate(np.zeros(3), np.zeros(2))


class TestRegionSetValidation:
    def test_duplicate_ids_rejected(self):
        from repro.spatial.geometry import Polygon

        polys = [Polygon.rectangle(0, 0, 1, 1), Polygon.rectangle(1, 0, 2, 1)]
        with pytest.raises(DataError):
            RegionSet("x", ["a", "a"], polys)

    def test_index_of_unknown_region(self):
        city = city_partition(0, 0, 1, 1)
        with pytest.raises(DataError):
            city.index_of("nope")

    def test_indices_of_maps_unknown_to_minus_one(self):
        city = city_partition(0, 0, 1, 1)
        out = city.indices_of(np.array(["city", "nope"]))
        assert out.tolist() == [0, -1]


class TestParentMap:
    def test_grid_to_city(self):
        grid = grid_partition(3, 3, 0, 0, 3, 3)
        city = city_partition(0, 0, 3, 3)
        assert (grid.parent_map(city) == 0).all()

    def test_fine_grid_to_coarse_grid(self):
        fine = grid_partition(4, 4, 0, 0, 4, 4)
        coarse = grid_partition(2, 2, 0, 0, 4, 4)
        parents = fine.parent_map(coarse)
        # Cell (0,0) of the fine grid (centroid 0.5,0.5) -> coarse cell 0.
        assert parents[0] == 0
        # Cell (3,3) -> coarse cell 3.
        assert parents[15] == 3


class TestAdjacency:
    def test_grid_adjacency_pair_count(self):
        # nx*ny grid has nx*(ny-1) + ny*(nx-1) adjacent pairs.
        pairs = grid_adjacency(4, 3)
        assert pairs.shape[0] == 4 * 2 + 3 * 3

    def test_shared_edges_matches_grid(self):
        grid = grid_partition(4, 3, 0, 0, 4, 3)
        a = adjacency_from_shared_edges(grid)
        b = grid_adjacency(4, 3)
        assert np.array_equal(a, b)

    def test_rectangles_matches_grid(self):
        grid = grid_partition(3, 4, 0, 0, 3, 4)
        a = adjacency_from_rectangles(grid)
        b = grid_adjacency(3, 4)
        assert np.array_equal(a, b)

    def test_rectangles_handles_t_junctions(self):
        # One tall rectangle beside two stacked ones: shared-edge hashing
        # misses the partial contact, rectangle adjacency finds it.
        from repro.spatial.geometry import Polygon

        regions = RegionSet(
            "t",
            ["tall", "low", "high"],
            [
                Polygon.rectangle(0, 0, 1, 2),
                Polygon.rectangle(1, 0, 2, 1),
                Polygon.rectangle(1, 1, 2, 2),
            ],
        )
        pairs = adjacency_from_rectangles(regions)
        assert {(0, 1), (0, 2), (1, 2)} == {tuple(p) for p in pairs}

    def test_corner_contact_is_not_adjacent(self):
        from repro.spatial.geometry import Polygon

        regions = RegionSet(
            "corner",
            ["a", "b"],
            [Polygon.rectangle(0, 0, 1, 1), Polygon.rectangle(1, 1, 2, 2)],
        )
        assert adjacency_from_rectangles(regions).shape[0] == 0

    def test_neighbors_from_pairs(self):
        pairs = grid_adjacency(2, 2)
        neighbors = neighbors_from_pairs(4, pairs)
        assert neighbors[0].tolist() == [1, 2]
        assert neighbors[3].tolist() == [1, 2]

    def test_invalid_grid_adjacency(self):
        with pytest.raises(DataError):
            grid_adjacency(0, 1)
