"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "/tmp/x"])
        assert args.days == 120
        assert args.scale == 0.5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_parallel_flags(self):
        args = build_parser().parse_args(
            ["query", "--data", "/tmp/x", "--workers", "4",
             "--executor", "thread"]
        )
        assert args.workers == 4
        assert args.executor == "thread"
        args = build_parser().parse_args(["demo", "--executor", "process"])
        assert args.executor == "process"
        args = build_parser().parse_args(["demo", "--executor", "cluster"])
        assert args.executor == "cluster"
        # Unset flags stay None so $REPRO_EXECUTOR / $REPRO_WORKERS can
        # supply the defaults at engine-resolution time.
        args = build_parser().parse_args(["demo"])
        assert args.workers is None
        assert args.executor is None

    def test_parallel_flag_env_defaults(self, monkeypatch):
        from repro.mapreduce.engine import default_engine

        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        args = build_parser().parse_args(["demo"])
        engine = default_engine(args.workers, args.executor)
        assert (engine.executor, engine.n_workers) == ("process", 3)
        # Explicit flags beat the environment.
        args = build_parser().parse_args(["demo", "--executor", "serial"])
        assert default_engine(args.workers, args.executor).executor == "serial"

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--executor", "gpu"])

    def test_worker_verb(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "10.0.0.5:7077", "--id", "host3",
             "--retry", "120", "--quiet"]
        )
        assert args.connect == "10.0.0.5:7077"
        assert args.id == "host3"
        assert args.retry == 120.0
        assert args.quiet is True
        args = build_parser().parse_args(["worker", "--connect", "c:7077"])
        assert args.id is None and args.retry == 60.0 and not args.quiet
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])  # --connect is required

    def test_worker_rejects_bad_address_at_startup(self):
        from repro.utils.errors import MapReduceError

        with pytest.raises(MapReduceError, match="--connect"):
            main(["worker", "--connect", "not-an-address"])

    def test_worker_gives_up_when_no_coordinator(self):
        # An unused port and a zero retry window: one failed dial, exit 1.
        assert main(["worker", "--connect", "127.0.0.1:1", "--retry", "0",
                     "--quiet"]) == 1

    def test_worker_gives_up_on_a_silent_non_coordinator(self):
        """A peer that accepts TCP but never completes the handshake (wrong
        service on the port) must exhaust the retry window, not hang."""
        import socket
        import time

        listener = socket.create_server(("127.0.0.1", 0))
        try:
            host, port = listener.getsockname()[:2]
            start = time.monotonic()
            code = main(["worker", "--connect", f"{host}:{port}",
                         "--retry", "1", "--quiet"])
            elapsed = time.monotonic() - start
            assert code == 1
            assert elapsed < 30  # bounded by the window, not the handshake
        finally:
            listener.close()

    def test_index_verb_requires_data_and_out(self):
        args = build_parser().parse_args(
            ["index", "--data", "/tmp/cat", "--out", "/tmp/idx"]
        )
        assert args.data == "/tmp/cat"
        assert args.out == "/tmp/idx"
        assert args.force is False
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index", "--data", "/tmp/cat"])

    def test_update_verb_flags(self):
        args = build_parser().parse_args(
            ["update", "--data", "/tmp/cat", "--index", "/tmp/idx",
             "--dry-run", "--temporal", "day", "--workers", "2",
             "--executor", "thread"]
        )
        assert args.data == "/tmp/cat"
        assert args.index == "/tmp/idx"
        assert args.dry_run is True
        assert args.temporal == "day"
        assert (args.workers, args.executor) == (2, "thread")
        with pytest.raises(SystemExit):  # both sources are required
            build_parser().parse_args(["update", "--data", "/tmp/cat"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["update", "--index", "/tmp/idx"])

    def test_query_takes_catalog_or_index_not_both(self):
        args = build_parser().parse_args(["query", "--index", "/tmp/idx"])
        assert args.index == "/tmp/idx"
        with pytest.raises(SystemExit):  # neither source given
            build_parser().parse_args(["query"])
        with pytest.raises(SystemExit):  # both sources given
            build_parser().parse_args(
                ["query", "--data", "/tmp/cat", "--index", "/tmp/idx"]
            )

    def test_live_observability_flags(self):
        args = build_parser().parse_args(
            ["--metrics-port", "9100", "--profile", "/tmp/p.collapsed",
             "demo"]
        )
        assert args.metrics_port == 9100
        assert args.profile == "/tmp/p.collapsed"
        # Unset flags stay falsy so $REPRO_METRICS_PORT / $REPRO_PROFILE
        # can supply them at lifecycle time.
        args = build_parser().parse_args(["demo"])
        assert args.metrics_port is None
        assert args.profile == ""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--metrics-port", "not-a-port", "demo"])

    def test_worker_heartbeat_interval_flag(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "c:7077", "--heartbeat-interval", "0.25"]
        )
        assert args.heartbeat_interval == 0.25
        # Default None: the coordinator's welcome sets the cadence.
        args = build_parser().parse_args(["worker", "--connect", "c:7077"])
        assert args.heartbeat_interval is None

    def test_worker_rejects_nonpositive_heartbeat_interval(self):
        from repro.utils.errors import MapReduceError

        with pytest.raises(MapReduceError, match="heartbeat_interval"):
            main(["worker", "--connect", "127.0.0.1:1",
                  "--heartbeat-interval", "0"])

    def test_stats_json_flag(self):
        args = build_parser().parse_args(["stats", "--json", "/tmp/idx"])
        assert args.json is True
        args = build_parser().parse_args(["stats", "/tmp/idx"])
        assert args.json is False

    def test_top_verb(self):
        args = build_parser().parse_args(["top", "--port", "9100",
                                          "--interval", "0.5", "--frames", "3"])
        assert args.port == 9100
        assert args.interval == 0.5
        assert args.frames == 3
        args = build_parser().parse_args(["top", "--url", "http://h:9100"])
        assert args.url == "http://h:9100"
        assert args.port is None and args.frames is None

    def test_top_needs_a_target(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_METRICS_PORT", raising=False)
        assert main(["top"]) == 2
        assert "REPRO_METRICS_PORT" in capsys.readouterr().err

    def test_top_exits_2_when_exporter_never_answers(self, monkeypatch):
        # An unused port: misses with zero frames drawn exhaust, exit 2.
        monkeypatch.setattr("repro.obs.top._MISS_LIMIT", 2)
        assert main(["top", "--port", "1", "--interval", "0.01"]) == 2


class TestEndToEnd:
    def test_metrics_port_and_profile_lifecycle(self, tmp_path, capsys):
        import json
        import re
        import urllib.request

        from repro.obs.profile import parse_collapsed

        profile_out = tmp_path / "p.collapsed"
        code = main([
            "--metrics-port", "0", "--profile", str(profile_out),
            "simulate", "--out", str(tmp_path / "cat"), "--days", "7",
            "--scale", "0.2", "--datasets", "taxi", "--seed", "3",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        # The exporter announced its chosen port and was reachable during
        # the run (it is down by now; the announcement is the contract).
        match = re.search(r"http://127\.0\.0\.1:(\d+)/metrics", printed)
        assert match, printed
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(match.group(0), timeout=1.0)
        assert f"profile written to {profile_out}" in printed
        parsed = parse_collapsed(profile_out.read_text())
        assert parsed and all(
            isinstance(n, int) and n > 0 for n in parsed.values()
        )

        # stats --json on the produced catalog's index is covered by
        # ci_obs; here the trace-free default path must not have written
        # any trace file next to the profile.
        assert list(tmp_path.glob("*.json")) == []

    def test_top_renders_one_frame_from_a_live_exporter(self, capsys):
        from repro import obs

        exporter = obs.start_exporter(0)
        try:
            obs.counter("repro.worker.tasks", kind="map").inc(4)
            code = main([
                "top", "--url", exporter.url, "--interval", "0.01",
                "--frames", "1",
            ])
        finally:
            obs.stop_exporter()
        assert code == 0
        frame = capsys.readouterr().out
        assert "WORKER" in frame or "fleet" in frame or frame

    def test_simulate_then_query(self, tmp_path, capsys):
        out = tmp_path / "cat"
        argv = [
            "simulate",
            "--out",
            str(out),
            "--days",
            "21",
            "--scale",
            "0.3",
            "--datasets",
            "taxi,weather",
            "--seed",
            "5",
        ]
        code = main(argv)
        assert code == 0
        assert (out / "catalog.json").exists()
        assert (out / "taxi.csv").exists()

        argv = [
            "query",
            "--data",
            str(out),
            "--permutations",
            "30",
            "--temporal",
            "day",
            "--top",
            "5",
        ]
        code = main(argv)
        assert code == 0
        printed = capsys.readouterr().out
        assert "evaluated" in printed
        assert "scalar functions" in printed

    def test_query_with_find_filter(self, tmp_path, capsys):
        out = tmp_path / "cat"
        argv = [
            "simulate",
            "--out",
            str(out),
            "--days",
            "14",
            "--scale",
            "0.2",
            "--datasets",
            "taxi,weather,citibike",
        ]
        main(argv)
        argv = [
            "query",
            "--data",
            str(out),
            "--find",
            "taxi",
            "--permutations",
            "20",
            "--temporal",
            "day",
        ]
        code = main(argv)
        assert code == 0

    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        assert "relationships" in capsys.readouterr().out

    def test_index_then_query_skips_reindexing(self, tmp_path, capsys):
        """`repro index` + `repro query --index` must reproduce the catalog
        path's relationships exactly, without rebuilding the index."""
        cat = tmp_path / "cat"
        idx = tmp_path / "idx"
        argv = [
            "simulate",
            "--out",
            str(cat),
            "--days",
            "14",
            "--scale",
            "0.2",
            "--datasets",
            "taxi,weather",
            "--seed",
            "5",
        ]
        main(argv)
        capsys.readouterr()

        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            str(idx),
            "--temporal",
            "day",
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "saved index" in printed
        assert (idx / "index.json").exists()

        argv = [
            "query",
            "--data",
            str(cat),
            "--temporal",
            "day",
            "--permutations",
            "25",
            "--seed",
            "0",
        ]
        assert main(argv) == 0
        from_catalog = capsys.readouterr().out

        argv = [
            "query",
            "--index",
            str(idx),
            "--permutations",
            "25",
            "--seed",
            "0",
        ]
        assert main(argv) == 0
        from_index = capsys.readouterr().out
        assert "re-indexing skipped" in from_index

        def relationship_lines(text):
            return [line for line in text.splitlines() if "tau=" in line]

        assert relationship_lines(from_catalog) == relationship_lines(from_index)

        # A resolution the index was not built with must fail loudly, not
        # return an empty "no relationships" result.
        argv = [
            "query",
            "--index",
            str(idx),
            "--temporal",
            "week",
            "--permutations",
            "10",
        ]
        assert main(argv) == 2
        assert "not materialized in this index" in capsys.readouterr().err

    def test_index_refuses_to_clobber_without_force(self, tmp_path, capsys):
        """Satellite: `repro index` onto an existing index must refuse and
        point at `repro update`, unless --force is given."""
        cat = tmp_path / "cat"
        idx = tmp_path / "idx"
        argv = [
            "simulate",
            "--out",
            str(cat),
            "--days",
            "10",
            "--scale",
            "0.15",
            "--datasets",
            "taxi,weather",
            "--seed",
            "5",
        ]
        main(argv)
        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            str(idx),
            "--temporal",
            "day",
        ]
        assert main(argv) == 0
        manifest_before = (idx / "index.json").read_bytes()
        capsys.readouterr()

        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            str(idx),
            "--temporal",
            "day",
        ]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "repro update" in err and "--force" in err
        assert (idx / "index.json").read_bytes() == manifest_before

        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            str(idx),
            "--temporal",
            "day",
            "--force",
        ]
        assert main(argv) == 0

    def test_update_maintains_all_viable_spatial_scope(self, tmp_path, capsys):
        """An index built without a spatial whitelist records scope
        spatial=None ("all viable"); when a later catalog adds a data set
        viable at *more* spatial resolutions than any existing partition,
        `repro update` must include them — exactly like a fresh build."""
        import json

        cat, cat2 = tmp_path / "cat", tmp_path / "cat2"
        idx = tmp_path / "idx"
        # weather is city-viable only, so the index has only city partitions.
        argv = [
            "simulate",
            "--out",
            str(cat),
            "--days",
            "10",
            "--scale",
            "0.15",
            "--datasets",
            "weather",
            "--seed",
            "5",
        ]
        main(argv)
        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            str(idx),
            "--temporal",
            "day",
        ]
        assert main(argv) == 0
        argv = [
            "simulate",
            "--out",
            str(cat2),
            "--days",
            "10",
            "--scale",
            "0.15",
            "--datasets",
            "taxi,weather",
            "--seed",
            "5",
        ]
        main(argv)
        capsys.readouterr()
        assert main(["update", "--data", str(cat2), "--index", str(idx)]) == 0
        manifest = json.loads((idx / "index.json").read_text())
        assert manifest["scope"] == {"spatial": None, "temporal": ["day"]}
        taxi_spatials = {
            r["spatial"] for r in manifest["partitions"] if r["dataset"] == "taxi"
        }
        assert taxi_spatials == {"zip", "neighborhood", "city"}
        # weather's records are identical across the two simulations, so its
        # partition rode through the update untouched.
        assert "1 keep" in capsys.readouterr().out

    def test_index_clobber_guard_resolves_like_save(
        self, tmp_path, capsys, monkeypatch
    ):
        """The guard must expanduser/resolve --out exactly as save_index
        does, so `~/idx` cannot slip past it and clobber $HOME/idx."""
        monkeypatch.setenv("HOME", str(tmp_path))
        cat = tmp_path / "cat"
        argv = [
            "simulate",
            "--out",
            str(cat),
            "--days",
            "10",
            "--scale",
            "0.15",
            "--datasets",
            "taxi",
            "--seed",
            "5",
        ]
        main(argv)
        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            str(tmp_path / "idx"),
            "--temporal",
            "day",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            "~/idx",
            "--temporal",
            "day",
        ]
        assert main(argv) == 2
        assert "repro update" in capsys.readouterr().err

    def test_update_verb_dry_run_and_apply(self, tmp_path, capsys):
        cat = tmp_path / "cat"
        cat2 = tmp_path / "cat2"
        idx = tmp_path / "idx"
        argv = [
            "simulate",
            "--out",
            str(cat),
            "--days",
            "10",
            "--scale",
            "0.15",
            "--datasets",
            "taxi,weather",
            "--seed",
            "5",
        ]
        main(argv)
        argv = [
            "index",
            "--data",
            str(cat),
            "--out",
            str(idx),
            "--temporal",
            "day",
        ]
        main(argv)
        capsys.readouterr()

        # Dry run against the unchanged catalog: a no-op plan, no writes.
        manifest_before = (idx / "index.json").read_bytes()
        argv = [
            "update",
            "--data",
            str(cat),
            "--index",
            str(idx),
            "--dry-run",
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "nothing to do" in printed
        assert (idx / "index.json").read_bytes() == manifest_before

        # Mutate the catalog (append days + add a data set) and apply.
        argv = [
            "simulate",
            "--out",
            str(cat2),
            "--days",
            "14",
            "--scale",
            "0.15",
            "--datasets",
            "taxi,weather,citibike",
            "--seed",
            "5",
        ]
        main(argv)
        capsys.readouterr()
        argv = [
            "update",
            "--data",
            str(cat2),
            "--index",
            str(idx),
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "update plan:" in printed and "updated" in printed

        # The updated index answers exactly like an index built from the
        # mutated catalog directly.
        argv = [
            "query",
            "--data",
            str(cat2),
            "--temporal",
            "day",
            "--permutations",
            "25",
            "--seed",
            "0",
        ]
        assert main(argv) == 0
        from_catalog = capsys.readouterr().out
        argv = [
            "query",
            "--index",
            str(idx),
            "--permutations",
            "25",
            "--seed",
            "0",
        ]
        assert main(argv) == 0
        from_index = capsys.readouterr().out

        def relationship_lines(text):
            return [line for line in text.splitlines() if "tau=" in line]

        assert relationship_lines(from_catalog) == relationship_lines(from_index)
