"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "/tmp/x"])
        assert args.days == 120
        assert args.scale == 0.5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_parallel_flags(self):
        args = build_parser().parse_args(
            ["query", "--data", "/tmp/x", "--workers", "4",
             "--executor", "thread"]
        )
        assert args.workers == 4
        assert args.executor == "thread"
        args = build_parser().parse_args(["demo"])
        assert args.workers == 1
        assert args.executor == "serial"

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["demo", "--executor", "gpu"]
            )


class TestEndToEnd:
    def test_simulate_then_query(self, tmp_path, capsys):
        out = tmp_path / "cat"
        code = main([
            "simulate", "--out", str(out), "--days", "21", "--scale", "0.3",
            "--datasets", "taxi,weather", "--seed", "5",
        ])
        assert code == 0
        assert (out / "catalog.json").exists()
        assert (out / "taxi.csv").exists()

        code = main([
            "query", "--data", str(out), "--permutations", "30",
            "--temporal", "day", "--top", "5",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "evaluated" in printed
        assert "scalar functions" in printed

    def test_query_with_find_filter(self, tmp_path, capsys):
        out = tmp_path / "cat"
        main([
            "simulate", "--out", str(out), "--days", "14", "--scale", "0.2",
            "--datasets", "taxi,weather,citibike",
        ])
        code = main([
            "query", "--data", str(out), "--find", "taxi",
            "--permutations", "20", "--temporal", "day",
        ])
        assert code == 0

    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        assert "relationships" in capsys.readouterr().out
