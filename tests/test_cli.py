"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "/tmp/x"])
        assert args.days == 120
        assert args.scale == 0.5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_parallel_flags(self):
        args = build_parser().parse_args(
            ["query", "--data", "/tmp/x", "--workers", "4",
             "--executor", "thread"]
        )
        assert args.workers == 4
        assert args.executor == "thread"
        args = build_parser().parse_args(["demo", "--executor", "process"])
        assert args.executor == "process"
        args = build_parser().parse_args(["demo", "--executor", "cluster"])
        assert args.executor == "cluster"
        # Unset flags stay None so $REPRO_EXECUTOR / $REPRO_WORKERS can
        # supply the defaults at engine-resolution time.
        args = build_parser().parse_args(["demo"])
        assert args.workers is None
        assert args.executor is None

    def test_parallel_flag_env_defaults(self, monkeypatch):
        from repro.mapreduce.engine import default_engine

        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        args = build_parser().parse_args(["demo"])
        engine = default_engine(args.workers, args.executor)
        assert (engine.executor, engine.n_workers) == ("process", 3)
        # Explicit flags beat the environment.
        args = build_parser().parse_args(["demo", "--executor", "serial"])
        assert default_engine(args.workers, args.executor).executor == "serial"

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["demo", "--executor", "gpu"]
            )

    def test_worker_verb(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "10.0.0.5:7077", "--id", "host3",
             "--retry", "120", "--quiet"]
        )
        assert args.connect == "10.0.0.5:7077"
        assert args.id == "host3"
        assert args.retry == 120.0
        assert args.quiet is True
        args = build_parser().parse_args(["worker", "--connect", "c:7077"])
        assert args.id is None and args.retry == 60.0 and not args.quiet
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])  # --connect is required

    def test_worker_rejects_bad_address_at_startup(self):
        from repro.utils.errors import MapReduceError

        with pytest.raises(MapReduceError, match="--connect"):
            main(["worker", "--connect", "not-an-address"])

    def test_worker_gives_up_when_no_coordinator(self):
        # An unused port and a zero retry window: one failed dial, exit 1.
        assert main(["worker", "--connect", "127.0.0.1:1", "--retry", "0",
                     "--quiet"]) == 1

    def test_worker_gives_up_on_a_silent_non_coordinator(self):
        """A peer that accepts TCP but never completes the handshake (wrong
        service on the port) must exhaust the retry window, not hang."""
        import socket
        import time

        listener = socket.create_server(("127.0.0.1", 0))
        try:
            host, port = listener.getsockname()[:2]
            start = time.monotonic()
            code = main(["worker", "--connect", f"{host}:{port}",
                         "--retry", "1", "--quiet"])
            elapsed = time.monotonic() - start
            assert code == 1
            assert elapsed < 30  # bounded by the window, not the handshake
        finally:
            listener.close()

    def test_index_verb_requires_data_and_out(self):
        args = build_parser().parse_args(
            ["index", "--data", "/tmp/cat", "--out", "/tmp/idx"]
        )
        assert args.data == "/tmp/cat"
        assert args.out == "/tmp/idx"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index", "--data", "/tmp/cat"])

    def test_query_takes_catalog_or_index_not_both(self):
        args = build_parser().parse_args(["query", "--index", "/tmp/idx"])
        assert args.index == "/tmp/idx"
        with pytest.raises(SystemExit):  # neither source given
            build_parser().parse_args(["query"])
        with pytest.raises(SystemExit):  # both sources given
            build_parser().parse_args(
                ["query", "--data", "/tmp/cat", "--index", "/tmp/idx"]
            )


class TestEndToEnd:
    def test_simulate_then_query(self, tmp_path, capsys):
        out = tmp_path / "cat"
        code = main([
            "simulate", "--out", str(out), "--days", "21", "--scale", "0.3",
            "--datasets", "taxi,weather", "--seed", "5",
        ])
        assert code == 0
        assert (out / "catalog.json").exists()
        assert (out / "taxi.csv").exists()

        code = main([
            "query", "--data", str(out), "--permutations", "30",
            "--temporal", "day", "--top", "5",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "evaluated" in printed
        assert "scalar functions" in printed

    def test_query_with_find_filter(self, tmp_path, capsys):
        out = tmp_path / "cat"
        main([
            "simulate", "--out", str(out), "--days", "14", "--scale", "0.2",
            "--datasets", "taxi,weather,citibike",
        ])
        code = main([
            "query", "--data", str(out), "--find", "taxi",
            "--permutations", "20", "--temporal", "day",
        ])
        assert code == 0

    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "3"]) == 0
        assert "relationships" in capsys.readouterr().out

    def test_index_then_query_skips_reindexing(self, tmp_path, capsys):
        """`repro index` + `repro query --index` must reproduce the catalog
        path's relationships exactly, without rebuilding the index."""
        cat = tmp_path / "cat"
        idx = tmp_path / "idx"
        main([
            "simulate", "--out", str(cat), "--days", "14", "--scale", "0.2",
            "--datasets", "taxi,weather", "--seed", "5",
        ])
        capsys.readouterr()

        assert main([
            "index", "--data", str(cat), "--out", str(idx), "--temporal", "day",
        ]) == 0
        printed = capsys.readouterr().out
        assert "saved index" in printed
        assert (idx / "index.json").exists()

        assert main([
            "query", "--data", str(cat), "--temporal", "day",
            "--permutations", "25", "--seed", "0",
        ]) == 0
        from_catalog = capsys.readouterr().out

        assert main([
            "query", "--index", str(idx), "--permutations", "25", "--seed", "0",
        ]) == 0
        from_index = capsys.readouterr().out
        assert "re-indexing skipped" in from_index

        def relationship_lines(text):
            return [line for line in text.splitlines() if "tau=" in line]

        assert relationship_lines(from_catalog) == relationship_lines(from_index)

        # A resolution the index was not built with must fail loudly, not
        # return an empty "no relationships" result.
        assert main([
            "query", "--index", str(idx), "--temporal", "week",
            "--permutations", "10",
        ]) == 2
        assert "not materialized in this index" in capsys.readouterr().err
