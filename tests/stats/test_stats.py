"""Tests for the statistics toolbox: 2-means, box plots, F1, descriptives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.boxplot import boxplot_stats
from repro.stats.descriptive import iqr, shannon_entropy, z_normalize
from repro.stats.fscore import f1_from_counts
from repro.stats.kmeans import two_means
from repro.utils.errors import DataError


class TestTwoMeans:
    def test_obvious_split(self):
        result = two_means(np.array([1.0, 1.2, 0.9, 10.0, 10.5]))
        assert result.labels.tolist() == [0, 0, 0, 1, 1]
        assert result.centers[0] < result.centers[1]
        assert result.split_value == 10.0

    def test_needs_two_values(self):
        with pytest.raises(DataError):
            two_means(np.array([1.0]))

    def test_two_values_split_into_singletons(self):
        result = two_means(np.array([3.0, 8.0]))
        assert sorted(result.labels.tolist()) == [0, 1]
        assert result.inertia == pytest.approx(0.0)

    def test_labels_align_with_input_order(self):
        result = two_means(np.array([10.0, 1.0, 9.5, 0.8]))
        assert result.labels.tolist() == [1, 0, 1, 0]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=40))
    def test_property_optimal_among_all_splits(self, values):
        vals = np.array(values)
        result = two_means(vals)
        # Brute force: every sorted-split must have SSE >= the returned one.
        sorted_vals = np.sort(vals)
        best = np.inf
        for k in range(1, len(sorted_vals)):
            lo, hi = sorted_vals[:k], sorted_vals[k:]
            sse = ((lo - lo.mean()) ** 2).sum() + ((hi - hi.mean()) ** 2).sum()
            best = min(best, sse)
        assert result.inertia == pytest.approx(best, abs=1e-6)


class TestBoxPlot:
    def test_quartiles_of_known_sample(self):
        stats = boxplot_stats(np.arange(1, 101, dtype=float))
        assert stats.q1 == pytest.approx(25.75)
        assert stats.median == pytest.approx(50.5)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.iqr == pytest.approx(49.5)

    def test_fences(self):
        stats = boxplot_stats(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.lower_fence() == pytest.approx(stats.q1 - 1.5 * stats.iqr)
        assert stats.upper_fence(3.0) == pytest.approx(stats.q3 + 3.0 * stats.iqr)

    def test_rejects_empty_and_nan(self):
        with pytest.raises(DataError):
            boxplot_stats(np.array([]))
        with pytest.raises(DataError):
            boxplot_stats(np.array([1.0, np.nan]))


class TestF1:
    def test_perfect_overlap(self):
        result = f1_from_counts(10, 10, 10)
        assert result.f1 == pytest.approx(1.0)

    def test_no_overlap(self):
        result = f1_from_counts(0, 10, 10)
        assert result.f1 == 0.0

    def test_known_value(self):
        result = f1_from_counts(5, 10, 5)
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(1.0)
        assert result.f1 == pytest.approx(2 * 0.5 / 1.5)

    def test_empty_sets_give_zero(self):
        assert f1_from_counts(0, 0, 0).f1 == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 50), st.integers(0, 100), st.integers(0, 100))
    def test_property_bounded(self, tp, n1, n2):
        tp = min(tp, n1, n2)
        result = f1_from_counts(tp, n1, n2)
        assert 0.0 <= result.f1 <= 1.0
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0


class TestDescriptive:
    def test_z_normalize(self):
        out = z_normalize(np.array([1.0, 2.0, 3.0]))
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_z_normalize_constant_gives_zeros(self):
        assert (z_normalize(np.full(5, 3.0)) == 0).all()

    def test_entropy_uniform(self):
        assert shannon_entropy(np.full(4, 0.25)) == pytest.approx(np.log(4))

    def test_entropy_point_mass_is_zero(self):
        assert shannon_entropy(np.array([1.0, 0.0])) == pytest.approx(0.0)

    def test_entropy_validation(self):
        with pytest.raises(DataError):
            shannon_entropy(np.array([0.5, 0.2]))
        with pytest.raises(DataError):
            shannon_entropy(np.array([-0.5, 1.5]))

    def test_iqr(self):
        assert iqr(np.arange(1, 101, dtype=float)) == pytest.approx(49.5)
        with pytest.raises(DataError):
            iqr(np.array([]))
