"""Tests for the §6.4 / Appendix D baselines: PCC, normalized MI, normalized DTW."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dtw import dtw_distance, dtw_score
from repro.baselines.mutual_information import mutual_information_score
from repro.baselines.pearson import pearson_score
from repro.utils.errors import DataError


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(50, dtype=float)
        assert pearson_score(x, 2 * x + 3) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(50, dtype=float)
        assert pearson_score(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 5000)
        y = rng.normal(0, 1, 5000)
        assert abs(pearson_score(x, y)) < 0.05

    def test_constant_series_gives_zero(self):
        assert pearson_score(np.ones(10), np.arange(10.0)) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            pearson_score(np.ones(3), np.ones(4))
        with pytest.raises(DataError):
            pearson_score(np.ones(1), np.ones(1))

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 200)
        y = 0.5 * x + rng.normal(0, 1, 200)
        assert pearson_score(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestMutualInformation:
    def test_identical_series_score_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 2000)
        assert mutual_information_score(x, x) == pytest.approx(1.0, abs=1e-9)

    def test_deterministic_function_scores_high(self):
        # Equal-width binning discretizes the nonlinear map, so the score
        # stays below 1 even for a deterministic relationship.
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, 3000)
        assert mutual_information_score(x, x**2) > 0.6

    def test_independent_scores_low(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 5000)
        y = rng.normal(0, 1, 5000)
        assert mutual_information_score(x, y) < 0.05

    def test_nonlinear_relationship_beats_pearson(self):
        # y = x^2 on symmetric x: PCC ~ 0 but MI is high.
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, 5000)
        y = x**2
        assert abs(pearson_score(x, y)) < 0.1
        assert mutual_information_score(x, y) > 0.3

    def test_constant_series_gives_zero(self):
        assert mutual_information_score(np.ones(100), np.arange(100.0)) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            mutual_information_score(np.ones(3), np.ones(4))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, 300)
        y = rng.normal(0, 1, 300)
        assert 0.0 <= mutual_information_score(x, y) <= 1.0


class TestDtwDistance:
    def test_identical_series_distance_zero(self):
        x = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw_distance(x, x) == pytest.approx(0.0)

    def test_known_small_example(self):
        # Alignment absorbs the time shift entirely.
        x = np.array([0.0, 1.0, 0.0])
        y = np.array([0.0, 0.0, 1.0])
        # Path: (0,0)(0,1)(1,2)(2,2) -> costs 0+0+0+1... best is 0+0+0+1=1? Direct
        # DP gives 1.0: the trailing 0 of x must match the trailing 1 of y or
        # the 1s align and a 0 matches a 1 somewhere once.
        assert dtw_distance(x, y) == pytest.approx(1.0)

    def test_warping_beats_euclidean(self):
        t = np.linspace(0, 2 * np.pi, 60)
        x = np.sin(t)
        y = np.sin(t + 0.6)
        euclid = np.abs(x - y).sum()
        assert dtw_distance(x, y) < euclid

    def test_different_lengths_allowed(self):
        assert dtw_distance(np.array([1.0, 2.0]), np.array([1.0, 1.5, 2.0])) >= 0.0

    def test_window_constrains_alignment(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 40)
        y = rng.normal(0, 1, 40)
        unconstrained = dtw_distance(x, y)
        banded = dtw_distance(x, y, window=3)
        assert banded >= unconstrained - 1e-12

    def test_window_too_small_rejected(self):
        with pytest.raises(DataError):
            dtw_distance(np.zeros(10), np.zeros(20), window=2)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            dtw_distance(np.zeros(0), np.zeros(3))


class TestDtwScore:
    def test_identical_series_score_one(self):
        x = np.sin(np.linspace(0, 10, 100))
        assert dtw_score(x, x) == pytest.approx(1.0)

    def test_shifted_series_score_high(self):
        t = np.linspace(0, 4 * np.pi, 200)
        assert dtw_score(np.sin(t), np.sin(t + 0.4)) > 0.9

    def test_uncorrelated_score_lower_than_identical(self):
        rng = np.random.default_rng(4)
        x = np.sin(np.linspace(0, 8 * np.pi, 150))
        y = rng.normal(0, 1, 150)
        assert dtw_score(x, y) < dtw_score(x, x)

    def test_both_constant_score_one(self):
        assert dtw_score(np.full(10, 3.0), np.full(10, 7.0)) == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, 30)
        y = rng.normal(0, 1, 30)
        assert 0.0 <= dtw_score(x, y) <= 1.0
