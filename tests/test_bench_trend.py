"""scripts/bench_trend.py core: direction inference, provenance gating."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "bench_trend", REPO / "scripts" / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_trend)


def record(**metrics):
    return {
        "benchmark": "b",
        "python": "3.11.7",
        "usable_cpus": 2,
        "smoke": True,
        **metrics,
    }


class TestDirections:
    def test_seconds_lower_is_better(self):
        assert bench_trend.metric_direction("index_seconds") == "lower"

    def test_throughputs_higher_is_better(self):
        for name in ("speedup", "evaluations_per_minute.exact", "rate"):
            assert bench_trend.metric_direction(name) == "higher"

    def test_counts_have_no_direction(self):
        assert bench_trend.metric_direction("n_significant") is None


class TestCompareRecords:
    def test_identical_records_have_no_regressions(self):
        rows = bench_trend.compare_records(
            record(build_seconds=1.0), record(build_seconds=1.0)
        )
        assert [r["regression"] for r in rows] == [False]

    def test_slower_seconds_flag_past_threshold(self):
        rows = bench_trend.compare_records(
            record(build_seconds=1.3), record(build_seconds=1.0)
        )
        assert rows[0]["regression"] is True
        assert rows[0]["worse_frac"] > bench_trend.THRESHOLD

    def test_lost_speedup_flags_and_gained_does_not(self):
        rows = bench_trend.compare_records(
            record(speedup=1.0), record(speedup=2.0)
        )
        assert rows[0]["regression"] is True
        rows = bench_trend.compare_records(
            record(speedup=3.0), record(speedup=2.0)
        )
        assert rows[0]["regression"] is False

    def test_nested_metric_paths_compare(self):
        rows = bench_trend.compare_records(
            record(measured_seconds={"2": 2.0}),
            record(measured_seconds={"2": 1.0}),
        )
        assert rows[0]["metric"] == "measured_seconds.2"
        assert rows[0]["regression"] is True

    def test_context_and_zero_baselines_skipped(self):
        rows = bench_trend.compare_records(
            record(build_seconds=0.5, n_significant=99),
            record(build_seconds=0.0, n_significant=5),
        )
        assert rows == []


class TestProvenance:
    def test_same_class_for_patch_python_bumps(self):
        old = record()
        new = dict(record(), python="3.11.9")
        assert bench_trend.provenance_class(old) == (
            bench_trend.provenance_class(new)
        )

    def test_different_cpu_budget_is_a_different_class(self):
        other = dict(record(), usable_cpus=8)
        assert bench_trend.provenance_class(record()) != (
            bench_trend.provenance_class(other)
        )

    def test_pre_provenance_records_still_classify(self):
        # Old committed records lack host/metrics blocks entirely.
        legacy = {"benchmark": "b", "python": "3.11.7", "usable_cpus": 2,
                  "smoke": True, "speedup": 2.0}
        assert bench_trend.provenance_class(legacy) == (2, True, "3.11")
