"""Unit tests for the shared-memory data plane (repro.mapreduce.shm)."""

import numpy as np
import pytest

from repro.mapreduce import shm
from repro.utils.errors import MapReduceError


@pytest.fixture(autouse=True)
def clean_attachments():
    """Each test starts and ends with no cached attachments."""
    shm.detach_all()
    yield
    shm.detach_all()


class TestSharedArrayPlane:
    def test_register_attach_roundtrip(self):
        array = np.arange(9000, dtype=np.float64).reshape(90, 100)
        with shm.SharedArrayPlane(min_bytes=1024) as plane:
            ref = plane.register(array)
            view = shm.attach(ref)
            assert np.array_equal(view, array)
            assert view.dtype == array.dtype
            assert view.shape == array.shape

    def test_registration_deduplicates_by_identity(self):
        array = np.ones(4096, dtype=np.float64)
        with shm.SharedArrayPlane(min_bytes=1024) as plane:
            ref1 = plane.register(array)
            ref2 = plane.register(array)
            assert ref1 == ref2
            assert plane.n_segments == 1
            # An equal-valued but distinct array gets its own segment.
            other = np.ones(4096, dtype=np.float64)
            assert plane.register(other) != ref1
            assert plane.n_segments == 2

    def test_small_and_object_arrays_not_eligible(self):
        plane = shm.SharedArrayPlane(min_bytes=1024)
        try:
            assert not plane.eligible(np.zeros(8))  # below threshold
            assert not plane.eligible(np.array([object()] * 2000))
            assert not plane.eligible([1.0] * 5000)  # not an ndarray
            assert plane.eligible(np.zeros(1024 // 8))
        finally:
            plane.close()

    def test_attached_view_is_readonly(self):
        array = np.zeros(2048, dtype=np.float64)
        with shm.SharedArrayPlane(min_bytes=1024) as plane:
            view = shm.attach(plane.register(array))
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_non_contiguous_source_roundtrips(self):
        base = np.arange(20000, dtype=np.float64).reshape(100, 200)
        strided = base[::2, ::2]
        assert not strided.flags.c_contiguous
        with shm.SharedArrayPlane(min_bytes=1024) as plane:
            view = shm.attach(plane.register(strided))
            assert np.array_equal(view, strided)

    def test_close_unlinks_everything_and_is_idempotent(self):
        plane = shm.SharedArrayPlane(min_bytes=1024)
        refs = [plane.register(np.zeros(1000, dtype=np.float64) + i) for i in range(3)]
        names = {ref[0] for ref in refs}
        assert names <= shm.live_segments()
        plane.close()
        plane.close()
        assert not (names & shm.live_segments())
        shm.detach_all()  # drop cached views before the segment vanishes
        with pytest.raises(MapReduceError):
            shm.attach(refs[0])

    def test_register_after_close_rejected(self):
        plane = shm.SharedArrayPlane(min_bytes=1024)
        plane.close()
        with pytest.raises(MapReduceError):
            plane.register(np.zeros(2048, dtype=np.float64))

    def test_invalid_min_bytes_rejected(self):
        with pytest.raises(MapReduceError):
            shm.SharedArrayPlane(min_bytes=0)

    def test_shared_bytes_accounting(self):
        array = np.zeros(4096, dtype=np.float64)
        with shm.SharedArrayPlane(min_bytes=1024) as plane:
            plane.register(array)
            assert plane.shared_bytes >= array.nbytes


class TestShmPickle:
    def test_dumps_loads_substitutes_large_arrays(self):
        big = np.arange(5000, dtype=np.float64)
        small = np.arange(4, dtype=np.float64)
        payload_obj = {"big": big, "small": small, "n": 7}
        with shm.SharedArrayPlane(min_bytes=1024) as plane:
            data = shm.dumps(payload_obj, plane)
            assert plane.n_segments == 1  # only `big` was promoted
            restored = shm.loads(data)
            assert np.array_equal(restored["big"], big)
            assert np.array_equal(restored["small"], small)
            assert restored["n"] == 7
            # The large array is a shared view, the small one a plain copy.
            assert not restored["big"].flags.writeable
            assert restored["small"].flags.writeable

    def test_shared_identity_preserved_within_payload(self):
        big = np.arange(5000, dtype=np.float64)
        with shm.SharedArrayPlane(min_bytes=1024) as plane:
            restored = shm.loads(shm.dumps((big, big), plane))
            assert restored[0] is restored[1]
            assert plane.n_segments == 1

    def test_dumps_without_plane_is_plain_pickle(self):
        big = np.arange(5000, dtype=np.float64)
        restored = shm.loads(shm.dumps(big))
        assert np.array_equal(restored, big)
        assert restored.flags.writeable

    def test_foreign_persistent_id_rejected(self):
        import io
        import pickle

        class EvilPickler(pickle.Pickler):
            def persistent_id(self, obj):
                if isinstance(obj, float):
                    return "not-our-pid"
                return None

        buffer = io.BytesIO()
        EvilPickler(buffer).dump(3.14)
        with pytest.raises(pickle.UnpicklingError):
            shm.loads(buffer.getvalue())
