"""Tests for the three framework jobs: the MR path must match the direct path."""

import numpy as np
import pytest

from repro.core.clause import Clause
from repro.core.corpus import Corpus
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.pipeline import PolygamyPipeline, _chunk_dataset
from repro.spatial.resolution import SpatialResolution
from repro.synth import nyc_urban_collection
from repro.temporal.resolution import TemporalResolution


@pytest.fixture(scope="module")
def small_collection():
    return nyc_urban_collection(
        seed=13,
        n_days=21,
        scale=0.3,
        subset=("taxi", "weather", "complaints_311"),
    )


class TestChunking:
    def test_chunks_partition_records(self, small_collection):
        taxi = small_collection.dataset("taxi")
        chunks = _chunk_dataset(taxi, 4)
        assert sum(c.n_records for c in chunks) == taxi.n_records
        assert all(c.schema is taxi.schema for c in chunks)

    def test_more_chunks_than_records(self, small_collection):
        taxi = small_collection.dataset("taxi")
        tiny = _chunk_dataset(taxi, taxi.n_records * 2)
        assert sum(c.n_records for c in tiny) == taxi.n_records


class TestScalarFunctionJob:
    def test_mr_functions_match_direct_aggregation(self, small_collection):
        city = small_collection.city
        datasets = small_collection.datasets
        pipeline = PolygamyPipeline(city, chunks_per_dataset=3)
        functions, stats = pipeline.run_scalar_functions(
            datasets,
            spatial=(SpatialResolution.CITY,),
            temporal=(TemporalResolution.DAY,),
        )
        assert stats.total_task_seconds > 0.0

        corpus = Corpus(datasets, city)
        index = corpus.build_index(
            spatial=(SpatialResolution.CITY,), temporal=(TemporalResolution.DAY,)
        )
        for (name, s_res, t_res), fns in functions.items():
            direct = index.dataset_index(name).functions[(s_res, t_res)]
            direct_by_id = {f.function.function_id: f.function for f in direct}
            for fn in fns:
                ref = direct_by_id[fn.function_id]
                assert np.allclose(fn.values, ref.values), fn.function_id

    def test_mr_functions_match_direct_on_neighborhood(self, small_collection):
        city = small_collection.city
        datasets = [small_collection.dataset("taxi")]
        pipeline = PolygamyPipeline(city, chunks_per_dataset=2)
        functions, _ = pipeline.run_scalar_functions(
            datasets,
            spatial=(SpatialResolution.NEIGHBORHOOD,),
            temporal=(TemporalResolution.DAY,),
        )
        corpus = Corpus(datasets, city)
        index = corpus.build_index(
            spatial=(SpatialResolution.NEIGHBORHOOD,),
            temporal=(TemporalResolution.DAY,),
        )
        key = ("taxi", SpatialResolution.NEIGHBORHOOD, TemporalResolution.DAY)
        direct = index.dataset_index("taxi").functions[
            (SpatialResolution.NEIGHBORHOOD, TemporalResolution.DAY)
        ]
        direct_by_id = {f.function.function_id: f.function for f in direct}
        for fn in functions[key]:
            assert np.allclose(fn.values, direct_by_id[fn.function_id].values)


class TestEndToEndPipeline:
    def test_pipeline_produces_reports(self, small_collection):
        pipeline = PolygamyPipeline(
            small_collection.city,
            engine=LocalEngine(n_workers=2, executor="thread"),
            chunks_per_dataset=2,
        )
        run = pipeline.run(
            small_collection.datasets,
            clause=Clause(),
            n_permutations=60,
            spatial=(SpatialResolution.CITY,),
            temporal=(TemporalResolution.DAY,),
            seed=3,
        )
        assert set(run.indexes) == {"taxi", "weather", "complaints_311"}
        assert len(run.reports) == 3  # all unordered pairs
        assert run.scalar_stats.total_task_seconds > 0
        assert run.feature_stats.total_task_seconds > 0
        assert run.relationship_stats.total_task_seconds > 0

    def test_pipeline_relationships_match_corpus_query(self, small_collection):
        pipeline = PolygamyPipeline(small_collection.city, chunks_per_dataset=2)
        run = pipeline.run(
            small_collection.datasets,
            n_permutations=60,
            spatial=(SpatialResolution.CITY,),
            temporal=(TemporalResolution.DAY,),
            seed=3,
        )
        corpus = Corpus(small_collection.datasets, small_collection.city)
        index = corpus.build_index(
            spatial=(SpatialResolution.CITY,), temporal=(TemporalResolution.DAY,)
        )
        direct = index.query(n_permutations=60, seed=3)
        mr_pairs = {
            (r.function1, r.function2, r.feature_type)
            for report in run.reports
            for r in report.results
        }
        direct_pairs = {
            (r.function1, r.function2, r.feature_type) for r in direct.results
        }
        assert mr_pairs == direct_pairs
