"""Process-executor tests: equivalence, crash containment, shm hygiene.

The contract: ``executor="process"`` must produce bit-identical outputs to
``"serial"`` for any deterministic job, task failures inside a worker must
surface as :class:`MapReduceError` carrying the *original* traceback (never
a bare ``BrokenProcessPool``), and every shared-memory segment must be
released no matter how the run ended.
"""

import glob
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.mapreduce import shm
from repro.mapreduce.engine import (
    LocalEngine,
    auto_chunk_size,
    default_engine,
)
from repro.mapreduce.job import MapReduceJob
from repro.utils.errors import MapReduceError


def assert_no_segment_leaks():
    """No segment of ours is tracked or left behind in /dev/shm."""
    assert shm.live_segments() == frozenset()
    if os.path.isdir("/dev/shm"):  # Linux: the segments are visible as files
        assert glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*") == []


# Jobs live at module scope so they pickle by reference under any start
# method (spawn imports this module inside the worker).


class WordCount(MapReduceJob):
    def map(self, key, value):
        for word in value.split():
            yield word.lower(), 1

    def reduce(self, key, values):
        yield key, sum(values)


class OrderSensitiveJob(MapReduceJob):
    """Reduce output depends on value order: pins the shuffle guarantee."""

    def map(self, key, value):
        for i, v in enumerate(value):
            yield key % 3, (key, i, v)

    def reduce(self, key, values):
        yield key, tuple(values)


class ArraySumJob(MapReduceJob):
    """Ships a large matrix per input — exercises the shm plane."""

    def map(self, key, value):
        yield key % 2, float(value.sum())

    def reduce(self, key, values):
        yield key, sum(values)


class ExplodingMapJob(MapReduceJob):
    def map(self, key, value):
        if key == 2:
            raise ValueError("planted map failure")
        yield key, value

    def reduce(self, key, values):
        yield key, values


class ExplodingReduceJob(MapReduceJob):
    def map(self, key, value):
        yield key, value

    def reduce(self, key, values):
        raise RuntimeError("planted reduce failure")


class LibraryErrorJob(MapReduceJob):
    """Raises a library error — must keep its type across the process hop."""

    def map(self, key, value):
        from repro.utils.errors import PersistError

        raise PersistError("checksum mismatch for partition 3")

    def reduce(self, key, values):  # pragma: no cover - never reached
        yield key, values


class DyingWorkerJob(MapReduceJob):
    """Kills the worker process outright (no exception to pickle back)."""

    def map(self, key, value):
        os._exit(17)

    def reduce(self, key, values):  # pragma: no cover - never reached
        yield key, values


DOCS = [(1, "the quick brown fox"), (2, "the lazy dog"), (3, "the quick dog")]


class TestProcessExecutorEquivalence:
    def test_wordcount_matches_serial(self):
        serial, _ = LocalEngine().run(WordCount(), DOCS)
        proc, stats = LocalEngine(n_workers=2, executor="process").run(
            WordCount(), DOCS
        )
        assert proc == serial
        assert len(stats.map_task_seconds) == stats.n_map_chunks
        assert_no_segment_leaks()

    @pytest.mark.parametrize("chunk", [None, 2, "auto"])
    def test_order_sensitive_reduce_is_stable(self, chunk):
        inputs = [(k, list(range(k + 1))) for k in range(10)]
        serial, _ = LocalEngine().run(OrderSensitiveJob(), inputs)
        proc, _ = LocalEngine(
            n_workers=3, executor="process", map_chunk_size=chunk
        ).run(OrderSensitiveJob(), inputs)
        assert proc == serial

    def test_large_arrays_travel_through_shm(self):
        rng = np.random.default_rng(3)
        big = rng.normal(0, 1, 50_000)  # 400 KB, well above the threshold
        inputs = [(i, big) for i in range(5)]
        serial, _ = LocalEngine().run(ArraySumJob(), inputs)
        proc, _ = LocalEngine(
            n_workers=2, executor="process", map_chunk_size="auto"
        ).run(ArraySumJob(), inputs)
        assert proc == serial
        assert_no_segment_leaks()

    def test_single_worker_process_runs_serially(self):
        engine = LocalEngine(n_workers=1, executor="process")
        assert not engine.is_parallel
        outputs, _ = engine.run(WordCount(), DOCS)
        assert dict(outputs)["the"] == 3

    def test_empty_input(self):
        outputs, stats = LocalEngine(n_workers=2, executor="process").run(
            WordCount(), []
        )
        assert outputs == []
        assert stats.n_outputs == 0
        assert_no_segment_leaks()


class TestCrashContainment:
    def test_map_failure_carries_original_traceback(self):
        with pytest.raises(MapReduceError) as excinfo:
            LocalEngine(n_workers=2, executor="process").run(ExplodingMapJob(), DOCS)
        message = str(excinfo.value)
        assert "ValueError: planted map failure" in message
        assert "Traceback (most recent call last)" in message
        assert "map task failed" in message
        assert_no_segment_leaks()

    def test_reduce_failure_carries_original_traceback(self):
        with pytest.raises(MapReduceError) as excinfo:
            LocalEngine(n_workers=2, executor="process").run(ExplodingReduceJob(), DOCS)
        message = str(excinfo.value)
        assert "RuntimeError: planted reduce failure" in message
        assert "reduce task failed" in message
        assert_no_segment_leaks()

    def test_library_errors_keep_their_type(self):
        """ReproError subclasses cross the process boundary unchanged, so
        callers see the same exception the serial executor would raise; the
        worker traceback rides along as the cause."""
        from repro.utils.errors import PersistError

        with pytest.raises(PersistError, match="checksum mismatch") as excinfo:
            LocalEngine(n_workers=2, executor="process").run(LibraryErrorJob(), DOCS)
        cause = excinfo.value.__cause__
        assert isinstance(cause, MapReduceError)
        assert "Traceback (most recent call last)" in str(cause)
        assert_no_segment_leaks()

    def test_worker_death_surfaces_as_mapreduce_error(self):
        with pytest.raises(MapReduceError) as excinfo:
            LocalEngine(n_workers=2, executor="process").run(DyingWorkerJob(), DOCS)
        assert "worker process died" in str(excinfo.value)
        assert_no_segment_leaks()

    def test_failing_run_releases_shared_memory(self):
        rng = np.random.default_rng(5)
        big = rng.normal(0, 1, 50_000)
        inputs = [(i, big) for i in range(4)] + [(2, big)]
        with pytest.raises(MapReduceError):
            LocalEngine(n_workers=2, executor="process").run(ExplodingMapJob(), inputs)
        assert_no_segment_leaks()

    @pytest.mark.skipif(
        not sys.platform.startswith("linux"),
        reason="fork start method (the inline job class needs fork)",
    )
    def test_no_resource_tracker_warnings_end_to_end(self):
        """A full interpreter run must not trip the resource tracker.

        Leaked (or double-unregistered) segments surface as
        ``resource_tracker`` noise on stderr at interpreter exit — the
        symptom this asserts against, in a fresh subprocess so the tracker
        actually shuts down.
        """
        script = (
            "import numpy as np\n"
            "from repro.mapreduce.engine import LocalEngine\n"
            "from repro.mapreduce.job import MapReduceJob\n"
            "class ArraySum(MapReduceJob):\n"
            "    def map(self, key, value):\n"
            "        yield key % 2, float(value.sum())\n"
            "    def reduce(self, key, values):\n"
            "        yield key, sum(values)\n"
            "class ReduceShipsArrays(MapReduceJob):\n"
            "    # Tiny map inputs, large map *outputs*: the first shm\n"
            "    # registration happens only in the reduce phase, after the\n"
            "    # workers were forked — the topology where tracked\n"
            "    # attachments used to leak into per-worker trackers.\n"
            "    def map(self, key, value):\n"
            "        yield key % 2, np.full(20_000, float(value))\n"
            "    def reduce(self, key, values):\n"
            "        yield key, float(sum(v.sum() for v in values))\n"
            "big = np.arange(60_000, dtype=np.float64)\n"
            "engine = LocalEngine(n_workers=2, executor='process')\n"
            "out, _ = engine.run(ArraySum(), [(i, big) for i in range(4)])\n"
            "out2, _ = engine.run(ReduceShipsArrays(), [(i, i) for i in range(6)])\n"
            "print('OK', len(out) + len(out2))\n"
        )
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "OK 4" in result.stdout
        assert "resource_tracker" not in result.stderr, result.stderr


class TestEngineValidation:
    def test_unknown_executor_message_lists_valid_ones(self):
        with pytest.raises(MapReduceError) as excinfo:
            LocalEngine(executor="gpu")
        message = str(excinfo.value)
        for name in ("serial", "thread", "process"):
            assert name in message
        assert "gpu" in message

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "4"])
    def test_bad_worker_count_message(self, bad):
        with pytest.raises(MapReduceError) as excinfo:
            LocalEngine(n_workers=bad)
        message = str(excinfo.value)
        assert "n_workers" in message
        assert repr(bad) in message

    def test_bad_shm_min_bytes_rejected(self):
        with pytest.raises(MapReduceError):
            LocalEngine(shm_min_bytes=0)


class TestAutoChunkSize:
    def test_thread_targets_four_tasks_per_worker(self):
        assert auto_chunk_size(64, 4, "thread") == 4  # 16 tasks for 4 workers
        assert auto_chunk_size(17, 4, "thread") == 2

    def test_process_targets_two_tasks_per_worker(self):
        # Larger chunks amortize the per-task pickle/IPC round trip.
        assert auto_chunk_size(64, 4, "process") == 8
        assert auto_chunk_size(17, 4, "process") == 3

    def test_serial_and_degenerate_cases_keep_one_per_task(self):
        assert auto_chunk_size(64, 4, "serial") == 1
        assert auto_chunk_size(64, 1, "process") == 1
        assert auto_chunk_size(0, 4, "process") == 1

    def test_never_below_one(self):
        assert auto_chunk_size(1, 16, "process") == 1

    def test_unknown_executor_rejected(self):
        with pytest.raises(MapReduceError):
            auto_chunk_size(10, 2, "gpu")

    def test_engine_resolves_auto_per_executor(self):
        inputs = [(k, [k]) for k in range(64)]
        _, thread_stats = LocalEngine(
            n_workers=4, executor="thread", map_chunk_size="auto"
        ).run(OrderSensitiveJob(), inputs)
        _, proc_stats = LocalEngine(
            n_workers=4, executor="process", map_chunk_size="auto"
        ).run(OrderSensitiveJob(), inputs)
        assert thread_stats.n_map_chunks == 16
        assert proc_stats.n_map_chunks == 8


class TestDefaultEngine:
    def test_defaults_to_serial_single_worker(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        engine = default_engine()
        assert (engine.executor, engine.n_workers) == ("serial", 1)

    def test_environment_supplies_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        engine = default_engine()
        assert (engine.executor, engine.n_workers) == ("process", 4)
        assert engine.map_chunk_size == "auto"

    def test_explicit_arguments_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        engine = default_engine(n_workers=2, executor="thread")
        assert (engine.executor, engine.n_workers) == ("thread", 2)

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(MapReduceError):
            default_engine()
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(MapReduceError) as excinfo:
            default_engine()
        assert "REPRO_WORKERS" in str(excinfo.value)
