"""Parallel/serial equivalence of the map-reduce-backed core pipeline.

The contract under test: ``Corpus.build_index`` and ``CorpusIndex.query``
with ``executor="thread"``/``"process"`` (``n_workers=4``) or
``executor="cluster"`` (a real 2-host localhost cluster) must produce
**bit-identical** results to the serial path under a fixed seed, and the
engine's shuffle must be deterministic no matter in which order
intermediate pairs arrive.  For the process executor this additionally
proves every framework job and its payloads pickle cleanly and survive the
shared-memory detour; for the cluster executor, that they survive a socket
hop to another OS process and the spool/socket artifact plane.
"""

import random

import numpy as np
import pytest

from repro.core.corpus import Corpus
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import MapReduceJob
from repro.spatial.city import CityModel
from repro.data.dataset import Dataset
from repro.data.schema import DatasetSchema
from repro.spatial.resolution import SpatialResolution
from repro.temporal.resolution import TemporalResolution
from repro.utils.errors import MapReduceError

HOUR = 3600


def correlated_corpus(seed=0, n_hours=1200):
    """Three city/hour data sets: two related, one noise (like §6.2)."""
    rng = np.random.default_rng(seed)
    ts = np.arange(n_hours, dtype=np.int64) * HOUR
    t = np.arange(n_hours)
    base = 10 + 1.5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.2, n_hours)
    ups = rng.choice(n_hours - 6, 25, replace=False)
    downs = rng.choice(n_hours - 6, 25, replace=False)
    a = base.copy()
    b = 5 + 0.8 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.1, n_hours)
    for e in ups:
        a[e : e + 4] += 8
        b[e : e + 4] += 6
    for e in downs:
        a[e : e + 4] -= 8
        b[e : e + 4] -= 6
    noise = 10 + rng.normal(0, 1.0, n_hours)

    def city_dataset(name, values):
        schema = DatasetSchema(
            name,
            SpatialResolution.CITY,
            TemporalResolution.HOUR,
            numeric_attributes=("v",),
        )
        return Dataset(schema, timestamps=ts, numerics={"v": values})

    city = CityModel.synthetic(nbhd_grid=(3, 3), zip_grid=(2, 2))
    return Corpus(
        [
            city_dataset("alpha", a),
            city_dataset("beta", b),
            city_dataset("gamma", noise),
        ],
        city,
    )


def assert_indexes_identical(index1, index2):
    assert list(index1.datasets) == list(index2.datasets)
    for name, ds1 in index1.datasets.items():
        ds2 = index2.datasets[name]
        assert list(ds1.functions) == list(ds2.functions)
        for key, fns1 in ds1.functions.items():
            fns2 = ds2.functions[key]
            assert [f.function_id for f in fns1] == [f.function_id for f in fns2]
            for f1, f2 in zip(fns1, fns2):
                assert np.array_equal(f1.function.values, f2.function.values)
                for feature_type in ("salient", "extreme"):
                    s1 = f1.feature_set(feature_type)
                    s2 = f2.feature_set(feature_type)
                    assert np.array_equal(s1.positive, s2.positive)
                    assert np.array_equal(s1.negative, s2.negative)


def assert_query_results_identical(r1, r2):
    assert (r1.n_evaluated, r1.n_candidates, r1.n_significant) == (
        r2.n_evaluated,
        r2.n_candidates,
        r2.n_significant,
    )
    assert [(rep.dataset1, rep.dataset2) for rep in r1.reports] == [
        (rep.dataset1, rep.dataset2) for rep in r2.reports
    ]
    rows1 = [
        (x.function1, x.function2, x.feature_type, x.score, x.strength,
         x.p_value, x.n_related, x.precision, x.recall)
        for x in r1.results
    ]
    rows2 = [
        (x.function1, x.function2, x.feature_type, x.score, x.strength,
         x.p_value, x.n_related, x.precision, x.recall)
        for x in r2.results
    ]
    assert rows1 == rows2


#: The parallel backends every equivalence test runs against.  "cluster"
#: resolves to the session-scoped 2-host localhost cluster (real worker
#: processes over TCP, see tests/conftest.py).
PARALLEL_EXECUTORS = ("thread", "process", "cluster")


@pytest.fixture(params=PARALLEL_EXECUTORS)
def parallel_kwargs(request):
    """Engine kwargs for one parallel backend.

    Thread/process engines are built per call from the simple knobs; the
    cluster executor needs live workers, so it passes the shared
    ``cluster_engine`` explicitly (lazily instantiated on first use).
    """
    if request.param == "cluster":
        return {"engine": request.getfixturevalue("cluster_engine")}
    return {"n_workers": 4, "executor": request.param}


class TestCorpusParallelEquivalence:
    @pytest.fixture(scope="class")
    def corpus(self):
        return correlated_corpus()

    @pytest.fixture(scope="class")
    def serial_index(self, corpus):
        return corpus.build_index(temporal=(TemporalResolution.HOUR,))

    def test_build_index_parallel_matches_serial(
        self, corpus, serial_index, parallel_kwargs
    ):
        parallel = corpus.build_index(
            temporal=(TemporalResolution.HOUR,), **parallel_kwargs
        )
        assert_indexes_identical(serial_index, parallel)
        assert (
            serial_index.stats.n_scalar_functions
            == parallel.stats.n_scalar_functions
        )
        assert serial_index.stats.n_feature_sets == parallel.stats.n_feature_sets
        assert serial_index.stats.function_bytes == parallel.stats.function_bytes
        assert serial_index.stats.feature_bytes == parallel.stats.feature_bytes
        assert serial_index.stats.raw_bytes == parallel.stats.raw_bytes

    def test_query_parallel_matches_serial(self, corpus, serial_index, parallel_kwargs):
        serial = serial_index.query(n_permutations=150, seed=0)
        parallel = serial_index.query(n_permutations=150, seed=0, **parallel_kwargs)
        assert_query_results_identical(serial, parallel)
        assert serial.n_significant >= 1  # the planted pair survives

    def test_query_on_parallel_index_matches(
        self, corpus, serial_index, parallel_kwargs
    ):
        parallel_index = corpus.build_index(
            temporal=(TemporalResolution.HOUR,), **parallel_kwargs
        )
        serial = serial_index.query(n_permutations=60, seed=3)
        parallel = parallel_index.query(n_permutations=60, seed=3, **parallel_kwargs)
        assert_query_results_identical(serial, parallel)

    def test_process_index_shares_no_segments_afterwards(self, corpus):
        from repro.mapreduce import shm

        corpus.build_index(
            temporal=(TemporalResolution.HOUR,), n_workers=2, executor="process"
        )
        assert shm.live_segments() == frozenset()

    def test_generator_seed_parity(self, serial_index):
        serial = serial_index.query(n_permutations=40, seed=np.random.default_rng(11))
        parallel = serial_index.query(
            n_permutations=40,
            seed=np.random.default_rng(11),
            n_workers=4,
            executor="thread",
        )
        assert_query_results_identical(serial, parallel)

    def test_explicit_engine_override(self, serial_index):
        engine = LocalEngine(n_workers=2, executor="thread", map_chunk_size=3)
        serial = serial_index.query(n_permutations=40, seed=0)
        parallel = serial_index.query(n_permutations=40, seed=0, engine=engine)
        assert_query_results_identical(serial, parallel)

    def test_query_accepts_tuple_dataset_lists(self, serial_index):
        by_tuple = serial_index.query(
            datasets1=("alpha", "beta"), n_permutations=20, seed=0
        )
        by_list = serial_index.query(
            datasets1=["alpha", "beta"], n_permutations=20, seed=0
        )
        assert_query_results_identical(by_tuple, by_list)

    def test_query_job_stats_exposed(self, serial_index):
        result = serial_index.query(
            n_permutations=20, seed=0, n_workers=2, executor="thread"
        )
        assert result.job_stats is not None
        assert result.job_stats.n_map_chunks >= 1
        assert len(result.job_stats.reduce_task_seconds) == len(result.reports)


class PartialSumJob(MapReduceJob):
    """Toy job whose reduce output depends on value order (running max)."""

    def map(self, key, value):
        for i, v in enumerate(value):
            yield key % 2, (key, i, v)

    def reduce(self, key, values):
        # Deliberately order sensitive: concatenation of the value stream.
        yield key, tuple(values)


class TestEngineDeterminism:
    def test_shuffle_invariant_under_intermediate_ordering(self):
        tagged = []
        rng = random.Random(7)
        for input_index in range(20):
            for emit_index in range(3):
                tagged.append(
                    ((input_index, emit_index), input_index % 4,
                     (input_index, emit_index))
                )
        reference = LocalEngine.shuffle(list(tagged))
        for _ in range(5):
            rng.shuffle(tagged)
            shuffled = LocalEngine.shuffle(list(tagged))
            assert list(shuffled) == list(reference)
            assert shuffled == reference

    def test_order_sensitive_reduce_is_stable_across_executors(self):
        inputs = [(k, list(range(k + 1))) for k in range(10)]
        serial, _ = LocalEngine().run(PartialSumJob(), inputs)
        for n_workers in (2, 4):
            for chunk in (None, 2, "auto"):
                threaded, _ = LocalEngine(
                    n_workers=n_workers, executor="thread", map_chunk_size=chunk
                ).run(PartialSumJob(), inputs)
                assert threaded == serial

    def test_chunked_map_partitions(self):
        inputs = [(k, [k]) for k in range(10)]
        engine = LocalEngine(n_workers=2, executor="thread", map_chunk_size=4)
        outputs, stats = engine.run(PartialSumJob(), inputs)
        assert stats.n_map_chunks == 3  # ceil(10 / 4)
        assert len(stats.map_task_seconds) == 3
        serial_outputs, serial_stats = LocalEngine().run(PartialSumJob(), inputs)
        assert serial_stats.n_map_chunks == 10
        assert outputs == serial_outputs

    def test_auto_chunking_scales_with_workers(self):
        inputs = [(k, [k]) for k in range(64)]
        engine = LocalEngine(n_workers=4, executor="thread", map_chunk_size="auto")
        _, stats = engine.run(PartialSumJob(), inputs)
        # ceil(64 / (4 workers * 4 tasks-per-worker)) = 4 inputs per chunk.
        assert stats.n_map_chunks == 16
        serial = LocalEngine(map_chunk_size="auto")
        _, serial_stats = serial.run(PartialSumJob(), inputs)
        assert serial_stats.n_map_chunks == 64  # auto is a no-op when serial

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(MapReduceError):
            LocalEngine(map_chunk_size=0)
        with pytest.raises(MapReduceError):
            LocalEngine(map_chunk_size="huge")
