"""JobStats accounting: wall clock, busy time, and derived overhead."""

import pytest

from repro.mapreduce.job import JobStats


def test_defaults_are_empty():
    stats = JobStats()
    assert stats.map_task_seconds == [] and stats.reduce_task_seconds == []
    assert stats.wall_seconds == 0.0
    assert stats.total_task_seconds == 0.0
    assert stats.busy_seconds == 0.0
    assert stats.overhead_seconds == 0.0


def test_busy_seconds_includes_shuffle_but_total_does_not():
    stats = JobStats(
        map_task_seconds=[0.2, 0.3],
        reduce_task_seconds=[0.1],
        shuffle_seconds=0.05,
    )
    assert stats.total_task_seconds == pytest.approx(0.6)
    assert stats.busy_seconds == pytest.approx(0.65)


def test_overhead_is_wall_minus_busy():
    stats = JobStats(
        map_task_seconds=[0.2, 0.3],
        reduce_task_seconds=[0.1],
        shuffle_seconds=0.05,
        wall_seconds=0.9,
    )
    assert stats.overhead_seconds == pytest.approx(0.25)


def test_overhead_is_zero_when_wall_unmeasured():
    stats = JobStats(map_task_seconds=[1.0])
    assert stats.wall_seconds == 0.0
    assert stats.overhead_seconds == 0.0


def test_overhead_clamps_on_parallel_runs():
    # Fully parallel run: wall < busy because tasks overlapped.  Overhead
    # must clamp at zero, not go negative.
    stats = JobStats(map_task_seconds=[1.0, 1.0, 1.0, 1.0], wall_seconds=1.1)
    assert stats.busy_seconds == pytest.approx(4.0)
    assert stats.overhead_seconds == 0.0
