"""Tests for the local map-reduce engine and the simulated-cluster scheduler."""

import pytest

from repro.mapreduce.cluster import (
    greedy_makespan,
    job_makespan,
    speedup_curve,
    straggler_ratio,
)
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import JobStats, MapReduceJob
from repro.utils.errors import MapReduceError


class WordCount(MapReduceJob):
    def map(self, key, value):
        for word in value.split():
            yield word.lower(), 1

    def reduce(self, key, values):
        yield key, sum(values)


DOCS = [
    (1, "the quick brown fox"),
    (2, "the lazy dog"),
    (3, "the quick dog"),
]


class TestEngine:
    def test_wordcount_serial(self):
        outputs, stats = LocalEngine().run(WordCount(), DOCS)
        counts = dict(outputs)
        assert counts["the"] == 3
        assert counts["quick"] == 2
        assert counts["fox"] == 1
        assert stats.n_outputs == len(counts)
        assert len(stats.map_task_seconds) == 3
        assert len(stats.reduce_task_seconds) == len(counts)

    def test_wordcount_threaded_matches_serial(self):
        serial, _ = LocalEngine().run(WordCount(), DOCS)
        threaded, _ = LocalEngine(n_workers=4, executor="thread").run(WordCount(), DOCS)
        assert dict(serial) == dict(threaded)

    def test_unknown_executor_rejected(self):
        with pytest.raises(MapReduceError):
            LocalEngine(executor="gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(MapReduceError):
            LocalEngine(n_workers=0)

    def test_empty_input(self):
        outputs, stats = LocalEngine().run(WordCount(), [])
        assert outputs == []
        assert stats.total_task_seconds == 0.0


class TestGreedyMakespan:
    def test_single_node_is_sum(self):
        assert greedy_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_perfectly_parallel(self):
        assert greedy_makespan([1.0, 1.0, 1.0, 1.0], 4) == pytest.approx(1.0)

    def test_straggler_dominates(self):
        # One 10s task + many small: makespan can't go below 10s.
        tasks = [10.0] + [0.5] * 20
        assert greedy_makespan(tasks, 8) >= 10.0

    def test_empty_tasks(self):
        assert greedy_makespan([], 4) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(MapReduceError):
            greedy_makespan([1.0], 0)
        with pytest.raises(MapReduceError):
            greedy_makespan([-1.0], 2)

    def test_makespan_monotone_in_nodes(self):
        tasks = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        spans = [greedy_makespan(tasks, n) for n in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)


class TestSpeedupCurve:
    def make_stats(self, map_times, reduce_times):
        stats = JobStats()
        stats.map_task_seconds = map_times
        stats.reduce_task_seconds = reduce_times
        return stats

    def test_homogeneous_tasks_scale_nearly_linearly(self):
        stats = self.make_stats([1.0] * 16, [1.0] * 16)
        curve = speedup_curve(stats, [1, 2, 4, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[4] == pytest.approx(4.0)
        assert curve[8] == pytest.approx(8.0)

    def test_stragglers_cap_speedup(self):
        stats = self.make_stats([8.0] + [0.5] * 16, [])
        curve = speedup_curve(stats, [1, 4, 16])
        # T1 = 16; Tn >= 8 regardless of n.
        assert curve[16] <= 2.0 + 1e-9

    def test_job_makespan_includes_shuffle(self):
        stats = self.make_stats([1.0, 1.0], [1.0, 1.0])
        stats.shuffle_seconds = 0.5
        assert job_makespan(stats, 2) == pytest.approx(1.0 + 0.5 + 1.0)

    def test_map_reduce_barrier_makespans_add(self):
        """The reduce wave starts only after the slowest map task: the two
        wave makespans add instead of overlapping (the model job_makespan's
        docstring pins down)."""
        stats = self.make_stats([4.0, 1.0, 1.0], [3.0, 1.0])
        # 2 nodes: map wave = 4.0 (straggler), reduce wave = 3.0.
        assert job_makespan(stats, 2) == pytest.approx(4.0 + 3.0)
        # Were the phases overlapped, 2 nodes could finish sooner; the
        # barrier model must never report that.
        assert job_makespan(stats, 2) > max(4.0, 3.0)


class TestSpeedupCurveEdgeCases:
    """The cases the fig10 benchmark (and its measured twin) can feed in."""

    def make_stats(self, map_times, reduce_times, shuffle=0.0):
        stats = JobStats()
        stats.map_task_seconds = map_times
        stats.reduce_task_seconds = reduce_times
        stats.shuffle_seconds = shuffle
        return stats

    def test_single_node_is_exactly_one(self):
        stats = self.make_stats([0.5, 1.5, 2.5], [1.0], shuffle=0.25)
        curve = speedup_curve(stats, [1])
        assert curve[1] == pytest.approx(1.0)

    def test_more_nodes_than_tasks_plateaus(self):
        stats = self.make_stats([1.0, 1.0], [])
        curve = speedup_curve(stats, [2, 4, 64])
        # Two tasks can use at most two nodes; extra nodes idle.
        assert curve[2] == pytest.approx(2.0)
        assert curve[4] == pytest.approx(2.0)
        assert curve[64] == pytest.approx(2.0)

    def test_zero_duration_tasks_report_unit_speedup(self):
        stats = self.make_stats([0.0, 0.0, 0.0], [0.0])
        curve = speedup_curve(stats, [1, 2, 8])
        assert curve == {1: 1.0, 2: 1.0, 8: 1.0}

    def test_empty_stats_report_unit_speedup(self):
        curve = speedup_curve(JobStats(), [1, 4])
        assert curve == {1: 1.0, 4: 1.0}

    def test_shuffle_only_stats_are_flat(self):
        # Pure coordinator time cannot be sped up by adding nodes.
        stats = self.make_stats([], [], shuffle=2.0)
        curve = speedup_curve(stats, [1, 2, 16])
        assert all(v == pytest.approx(1.0) for v in curve.values())


class TestStragglerRatio:
    def test_uniform_tasks(self):
        assert straggler_ratio([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_heavy_tail(self):
        assert straggler_ratio([1.0, 1.0, 10.0]) == pytest.approx(10.0 / 4.0)

    def test_empty(self):
        assert straggler_ratio([]) == 1.0
