"""The disabled path must stay negligible: tracing off is the default.

Every hook the subsystem wires into the engines, scheduler and query path
runs unconditionally in production code; what keeps them free is that
``obs.span`` with no active trace returns one shared no-op handle after a
single module-global read.  These tests pin that structure (identity, no
allocation) and add a deliberately loose wall-clock ceiling so a future
"just a small dict lookup per call" regression still fails loudly.
"""

import time

from repro import obs
from repro.obs.trace import _NOOP_SPAN


def setup_function(_fn):
    obs.end_trace()


def test_disabled_span_is_the_shared_singleton():
    # No allocation, no branching on attrs: the same object every call.
    first = obs.span("engine.run", executor="serial", n_workers=1)
    second = obs.span("map.task")
    assert first is second is _NOOP_SPAN
    with first as handle:
        handle.set(anything=1)
    assert handle is _NOOP_SPAN


def test_disabled_record_span_returns_immediately():
    assert obs.record_span("x", 1.0, attr="y") is None
    assert obs.add_span("x", 0.0, 1.0) is None


def test_disabled_path_wall_clock_bound():
    iterations = 100_000
    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("map.task", n_inputs=8):
            pass
    elapsed = time.perf_counter() - start
    # Generous for slow CI boxes: ~2 µs/call budget.  The real cost is
    # ~100 ns; an accidental always-on trace or per-call dict machinery
    # blows well past this.
    assert elapsed < 0.2, f"{iterations} disabled spans took {elapsed:.3f}s"


def test_enabled_then_disabled_restores_inertness():
    obs.start_trace("t")
    with obs.span("a"):
        pass
    trace = obs.end_trace()
    assert len(trace.spans) == 1
    assert obs.span("b") is _NOOP_SPAN
    assert obs.current_trace() is None


def test_disabled_profiler_is_the_shared_singleton():
    from repro.obs.profile import _NOOP_PROFILER

    first = obs.active_profiler()
    second = obs.active_profiler()
    assert first is second is _NOOP_PROFILER


def test_disabled_profiler_wall_clock_bound():
    iterations = 100_000
    start = time.perf_counter()
    for _ in range(iterations):
        profiler = obs.active_profiler()
        profiler.add_counts(None)
    elapsed = time.perf_counter() - start
    # Same budget as disabled spans: the lookup is one module-global read
    # and the no-op methods do nothing.
    assert elapsed < 0.2, f"{iterations} disabled lookups took {elapsed:.3f}s"


def test_no_exporter_and_no_sockets_by_default(monkeypatch):
    # Default-off means default-off: no singleton, and ensure_from_env
    # without the variable is a dict lookup, not a bind.
    monkeypatch.delenv(obs.ENV_METRICS_PORT, raising=False)
    assert obs.active_exporter() is None
    assert obs.ensure_from_env() is None
    iterations = 50_000
    start = time.perf_counter()
    for _ in range(iterations):
        obs.ensure_from_env()
    elapsed = time.perf_counter() - start
    assert elapsed < 0.5, f"{iterations} env checks took {elapsed:.3f}s"
