"""Heartbeat metrics shipping: DeltaShipper -> FleetAggregator.

The wire contract (protocol v2.3) is at-most-once delta delivery with
``(epoch, seq)`` identity: duplicates fold to nothing, a changed epoch
resets the worker's replica, and the fleet merge is independent of the
order deltas arrive in — the property test at the bottom holds that for
arbitrary interleavings with duplication.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.fleet import DeltaShipper, FleetAggregator
from repro.obs.metrics import DEFAULT_BUCKET_BOUNDS, MetricsRegistry


def make_shipper():
    registry = MetricsRegistry()
    return registry, DeltaShipper(registry)


class TestDeltaShipper:
    def test_quiet_registry_ships_nothing(self):
        _, shipper = make_shipper()
        assert shipper.next_delta() is None

    def test_first_delta_carries_absolute_values(self):
        registry, shipper = make_shipper()
        registry.counter("tasks", kind="map").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("seconds").observe(0.01)
        delta = shipper.next_delta()
        assert delta["seq"] == 1
        assert delta["counters"] == [["tasks", [["kind", "map"]], 3]]
        assert delta["gauges"] == [["depth", [], 2.0]]
        (name, labels, shard) = delta["histograms"][0]
        assert (name, labels) == ("seconds", [])
        assert shard["count"] == 1
        assert shard["total"] == pytest.approx(0.01)
        # Default bounds are implied, not re-shipped on every beat.
        assert "bounds" not in shard

    def test_deltas_are_increments_not_totals(self):
        registry, shipper = make_shipper()
        registry.counter("tasks").inc(3)
        assert shipper.next_delta()["counters"] == [["tasks", [], 3]]
        registry.counter("tasks").inc(2)
        delta = shipper.next_delta()
        assert delta["counters"] == [["tasks", [], 2]]
        assert delta["seq"] == 2
        assert shipper.next_delta() is None

    def test_epoch_is_stable_within_one_shipper(self):
        registry, shipper = make_shipper()
        registry.counter("a").inc()
        first = shipper.next_delta()
        registry.counter("a").inc()
        second = shipper.next_delta()
        assert first["epoch"] == second["epoch"]
        # ...but a restarted daemon (new shipper) gets a fresh epoch.
        assert DeltaShipper(registry).epoch != shipper.epoch


class TestFleetAggregator:
    def test_apply_folds_into_fleet_registry(self):
        registry, shipper = make_shipper()
        registry.counter("tasks", kind="map").inc(4)
        fleet = FleetAggregator()
        assert fleet.apply("w0", shipper.next_delta()) is True
        assert fleet.worker_registry("w0").counter("tasks", kind="map").value == 4
        assert fleet.fleet_registry().counter("tasks", kind="map").value == 4

    def test_duplicate_delta_is_dropped(self):
        registry, shipper = make_shipper()
        registry.counter("tasks").inc()
        delta = shipper.next_delta()
        fleet = FleetAggregator()
        assert fleet.apply("w0", delta) is True
        assert fleet.apply("w0", delta) is False
        assert fleet.worker_registry("w0").counter("tasks").value == 1

    def test_epoch_change_resets_the_replica(self):
        registry, shipper = make_shipper()
        registry.counter("tasks").inc(5)
        fleet = FleetAggregator()
        fleet.apply("w0", shipper.next_delta())
        # Worker restarts: same id, fresh registry and shipper.
        registry2 = MetricsRegistry()
        shipper2 = DeltaShipper(registry2)
        registry2.counter("tasks").inc(2)
        fleet.apply("w0", shipper2.next_delta())
        assert fleet.worker_registry("w0").counter("tasks").value == 2

    def test_gauges_newest_seq_wins(self):
        registry, shipper = make_shipper()
        registry.gauge("depth").set(5.0)
        first = shipper.next_delta()
        registry.gauge("depth").set(1.0)
        second = shipper.next_delta()
        fleet = FleetAggregator()
        fleet.apply("w0", second)
        fleet.apply("w0", first)  # late arrival must not regress the gauge
        assert fleet.worker_registry("w0").gauge("depth").value == 1.0

    def test_malformed_delta_rejected(self):
        fleet = FleetAggregator()
        assert fleet.apply("w0", "garbage") is False
        assert fleet.apply("w0", {"no": "seq"}) is False
        assert fleet.worker_ids() == []

    def test_snapshot_has_fleet_and_per_worker_series(self):
        fleet = FleetAggregator()
        for worker in ("w0", "w1"):
            registry, shipper = make_shipper()
            registry.counter("tasks").inc(3)
            fleet.apply(worker, shipper.next_delta())
        snap = fleet.snapshot()
        assert snap["counters"]["tasks"] == 6
        assert snap["counters"]["tasks{worker=w0}"] == 3
        assert snap["counters"]["tasks{worker=w1}"] == 3


@settings(max_examples=30, deadline=None)
@given(
    increments=st.lists(
        st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=5),
        min_size=1,
        max_size=4,
    ),
    observations=st.lists(
        st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
        min_size=0,
        max_size=20,
    ),
    order_seed=st.integers(min_value=0, max_value=2**32 - 1),
    duplicate_every=st.integers(min_value=1, max_value=3),
)
def test_arrival_order_and_duplicates_never_change_the_fleet(
    increments, observations, order_seed, duplicate_every
):
    """Satellite invariant: shuffled + duplicated delivery is idempotent.

    One worker per increments-row emits one delta per increment (plus
    histogram observations spread round-robin).  Applying the deltas in
    emission order vs. a seeded shuffle with every ``duplicate_every``-th
    delta sent twice must produce identical fleet counters and identical
    fleet histogram buckets.
    """
    emitted: list[tuple[str, dict]] = []
    for w, row in enumerate(increments):
        registry = MetricsRegistry()
        shipper = DeltaShipper(registry)
        for i, inc in enumerate(row):
            registry.counter("tasks", kind="map").inc(inc)
            for value in observations[w::len(increments)]:
                if hash((w, i)) % 2:  # vary which beat carries observations
                    registry.histogram("seconds").observe(value)
            delta = shipper.next_delta()
            if delta is not None:
                emitted.append((f"w{w}", delta))

    def fleet_state(deliveries):
        fleet = FleetAggregator()
        for worker_id, delta in deliveries:
            fleet.apply(worker_id, delta)
        merged = fleet.fleet_registry()
        hist = merged.histogram("seconds")
        return (
            merged.counter("tasks", kind="map").value,
            tuple(hist.counts),
            hist.count,
        )

    in_order = fleet_state(emitted)
    shuffled = list(emitted)
    random.Random(order_seed).shuffle(shuffled)
    with_duplicates = []
    for i, item in enumerate(shuffled):
        with_duplicates.append(item)
        if i % duplicate_every == 0:
            with_duplicates.append(item)
    assert fleet_state(with_duplicates) == in_order
