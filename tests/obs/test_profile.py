"""Sampling profiler: collapsed-stack output, round-trip, no-op default."""

import threading
import time

import pytest

from repro import obs
from repro.obs.profile import (
    _NOOP_PROFILER,
    Profiler,
    parse_collapsed,
)


def busy_wait(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(200))


class TestProfiler:
    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        thread = threading.Thread(target=busy_wait, args=(stop,), daemon=True)
        thread.start()
        profiler = Profiler(interval=0.001)
        time.sleep(0.15)
        profiler.stop()
        stop.set()
        thread.join()
        assert profiler.samples > 0
        counts = profiler.counts()
        assert counts
        # Root-first frames: the thread bootstrap is the first frame of
        # the busy thread's stacks, and our function shows up in one.
        assert any("busy_wait" in stack for stack in counts)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Profiler(interval=0.0)

    def test_stop_is_idempotent(self):
        profiler = Profiler(interval=0.001)
        profiler.stop()
        profiler.stop()

    def test_collapsed_round_trips_through_parser(self, tmp_path):
        profiler = Profiler(interval=0.001)
        time.sleep(0.05)
        profiler.stop()
        path = tmp_path / "out.collapsed"
        profiler.write(path)
        assert parse_collapsed(path.read_text()) == profiler.counts()

    def test_add_counts_applies_worker_prefix(self):
        profiler = Profiler(interval=0.001)
        profiler.stop()
        profiler.add_counts({"a.py:f:1;b.py:g:2": 4}, prefix="worker:h0")
        assert profiler.counts()["worker:h0;a.py:f:1;b.py:g:2"] == 4
        # Folding the same stacks again accumulates, not overwrites.
        profiler.add_counts({"a.py:f:1;b.py:g:2": 1}, prefix="worker:h0")
        assert profiler.counts()["worker:h0;a.py:f:1;b.py:g:2"] == 5

    def test_add_counts_ignores_garbage_silently(self):
        # Worker-shipped payloads are wire data: a malformed one must be
        # dropped, never crash the coordinator's reader thread.
        profiler = Profiler(interval=0.001)
        profiler.stop()
        profiler.add_counts([("not", "a", "dict")])
        profiler.add_counts({42: 1, "ok": "not-an-int", "good": 2})
        counts = profiler.counts()
        assert counts.get("good") == 2
        assert 42 not in counts and "ok" not in counts


class TestParseCollapsed:
    def test_parses_and_folds_duplicates(self):
        text = "a;b 3\na;b 2\nc 1\n"
        assert parse_collapsed(text) == {"a;b": 5, "c": 1}

    def test_rejects_lines_without_a_count(self):
        with pytest.raises(ValueError):
            parse_collapsed("just-a-stack-no-count\n")


class TestLifecycle:
    def test_disabled_profiler_is_the_shared_noop_singleton(self):
        assert obs.active_profiler() is _NOOP_PROFILER
        assert obs.active_profiler() is obs.active_profiler()
        # The no-op accepts the full surface without effect.
        noop = obs.active_profiler()
        noop.add_counts({"a 1": 1})
        noop.stop()
        assert noop.counts() == {}
        assert noop.samples == 0

    def test_start_end_profile(self):
        profiler = obs.start_profile(interval=0.001)
        try:
            assert obs.active_profiler() is profiler
            assert obs.start_profile() is profiler  # idempotent
            time.sleep(0.03)
        finally:
            ended = obs.end_profile()
        assert ended is profiler
        assert obs.active_profiler() is _NOOP_PROFILER
        assert obs.end_profile() is None  # second end is a no-op
        assert ended.samples > 0
