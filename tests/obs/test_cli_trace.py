"""CLI trace lifecycle: --trace / $REPRO_TRACE wrap any command in a trace."""

import json

import pytest

from repro import obs
from repro.__main__ import main


@pytest.fixture(autouse=True)
def no_leaked_trace():
    obs.end_trace()
    yield
    obs.end_trace()


def simulate(tmp_path, **kwargs):
    out = tmp_path / "cat"
    argv = ["simulate", "--out", str(out), "--days", "10", "--scale", "0.15"]
    argv += ["--datasets", "taxi,weather", "--seed", "5"]
    assert main(argv) == 0
    return out


def test_trace_flag_writes_chrome_json(tmp_path, capsys):
    cat = simulate(tmp_path)
    trace_out = tmp_path / "trace.json"
    argv = ["--trace", str(trace_out), "index", "--data", str(cat)]
    argv += ["--out", str(tmp_path / "idx"), "--temporal", "day"]
    assert main(argv) == 0
    printed = capsys.readouterr().out
    assert "trace written to" in printed

    document = json.loads(trace_out.read_text())
    names = {e["name"] for e in document["traceEvents"] if e.get("ph") == "X"}
    assert "cli.index" in names
    assert "index.build" in names
    assert "persist.save" in names
    extra = document["repro"]
    assert extra["name"] == "index"
    assert 0.0 < extra["coverage"] <= 1.0
    # The CLI embeds a metrics snapshot alongside the spans.
    assert "counters" in extra["metrics"]
    # No trace leaks into the process after the command returns.
    assert not obs.enabled()


def test_trace_env_var_and_jsonl_sidecar(tmp_path, monkeypatch, capsys):
    cat = simulate(tmp_path)
    trace_out = tmp_path / "trace.jsonl"
    monkeypatch.setenv(obs.ENV_TRACE, str(trace_out))
    argv = ["query", "--data", str(cat), "--permutations", "20"]
    argv += ["--temporal", "day", "--seed", "0"]
    assert main(argv) == 0
    lines = trace_out.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["name"] == "query"
    assert header["n_spans"] == len(lines) - 1
    span_names = {json.loads(line)["name"] for line in lines[1:]}
    assert "cli.query" in span_names and "index.query" in span_names
    # JSONL traces get a metrics sidecar (Chrome embeds them instead).
    metrics = json.loads(trace_out.with_suffix(".metrics.json").read_text())
    assert any(k.startswith("repro.query.seconds") for k in metrics["histograms"])


def test_stats_verb_on_trace_and_index(tmp_path, capsys):
    cat = simulate(tmp_path)
    idx = tmp_path / "idx"
    trace_out = tmp_path / "trace.json"
    argv = ["--trace", str(trace_out), "index", "--data", str(cat)]
    argv += ["--out", str(idx), "--temporal", "day"]
    assert main(argv) == 0
    capsys.readouterr()

    assert main(["stats", str(trace_out)]) == 0
    printed = capsys.readouterr().out
    assert "index.build" in printed

    assert main(["stats", str(idx)]) == 0
    printed = capsys.readouterr().out
    assert "taxi" in printed and "weather" in printed

    assert main(["stats", str(tmp_path / "missing")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_worker_verb_never_claims_the_trace_file(tmp_path, monkeypatch):
    # Workers ship spans over the protocol; writing the driver's trace
    # file from a worker process would race it.  The CLI must not trace
    # the worker verb even when $REPRO_TRACE is set.
    trace_out = tmp_path / "worker.json"
    monkeypatch.setenv(obs.ENV_TRACE, str(trace_out))
    argv = ["worker", "--connect", "127.0.0.1:1", "--retry", "0", "--quiet"]
    assert main(argv) == 1
    assert not trace_out.exists()
    assert not obs.enabled()
