"""Logger hierarchy, JSON-lines formatting, and idempotent configuration."""

import json
import logging

from repro.obs import (
    ROOT_LOGGER_NAME,
    capture_logging,
    configure_logging,
    get_logger,
)


def teardown_function(_fn):
    # Drop the managed handler so later tests start from library silence.
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)


def test_get_logger_anchors_names_under_repro():
    assert get_logger().name == "repro"
    assert get_logger("repro").name == "repro"
    assert get_logger("repro.persist.index_io").name == "repro.persist.index_io"
    assert get_logger("scripts.ci_obs").name == "repro.scripts.ci_obs"


def test_root_carries_a_null_handler():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
    # Library silence: an unconfigured app sees no "no handlers" warning.


def test_json_lines_output_is_parseable():
    buffer = capture_logging(level=logging.INFO)
    logger = get_logger("repro.test.logging")
    logger.info("hello %s", "world", extra={"data": {"n_tasks": 3}})
    logger.warning("retrying")

    lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert len(lines) == 2
    first, second = lines
    assert first["level"] == "INFO"
    assert first["logger"] == "repro.test.logging"
    assert first["message"] == "hello world"
    assert first["n_tasks"] == 3
    assert isinstance(first["ts"], float)
    assert second["level"] == "WARNING"


def test_exceptions_are_embedded_in_the_record():
    buffer = capture_logging()
    logger = get_logger("repro.test.logging")
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        logger.exception("task failed")
    entry = json.loads(buffer.getvalue().splitlines()[-1])
    assert entry["level"] == "ERROR"
    assert "RuntimeError: boom" in entry["exc"]


def test_configure_logging_is_idempotent():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    before = len(root.handlers)
    configure_logging(json_lines=True)
    configure_logging(json_lines=False)
    configure_logging(json_lines=True)
    managed = [h for h in root.handlers if getattr(h, "_repro_obs_handler", False)]
    assert len(managed) == 1
    assert len(root.handlers) == before + 1


def test_text_mode_formats_human_lines():
    buffer = capture_logging(json_lines=False)
    get_logger("repro.test.logging").info("plain text here")
    line = buffer.getvalue()
    assert "plain text here" in line
    assert "repro.test.logging" in line
    assert not line.lstrip().startswith("{")
