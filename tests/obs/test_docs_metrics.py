"""docs/OBSERVABILITY.md's metric-name table is held in lockstep with src.

Every metric name instrumented anywhere in the package must appear in the
docs table, and every documented ``repro.*`` name must still exist in the
source — an undocumented counter and a stale doc row both fail here.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs" / "OBSERVABILITY.md"
SRC = REPO / "src" / "repro"

#: Instrument registrations: obs.counter("name", ...) / gauge / histogram,
#: including aliased imports like ``obs_counter(...)``.
_CALL_RE = re.compile(r'(?:counter|gauge|histogram)\(\s*"(repro\.[a-z0-9_.]+)"')

#: Documented names: the backticked first column of the metric table.
_DOC_RE = re.compile(r"^\| `(repro\.[a-z0-9_.]+)`", re.MULTILINE)


def instrumented_names() -> set[str]:
    names: set[str] = set()
    for path in SRC.rglob("*.py"):
        names.update(_CALL_RE.findall(path.read_text(encoding="utf-8")))
    return names


def documented_names() -> set[str]:
    text = DOCS.read_text(encoding="utf-8")
    names: set[str] = set()
    for match in _DOC_RE.finditer(text):
        # A row like `repro.dataplane.fetched` / `.fetched_bytes` documents
        # two series; expand the suffix shorthand.
        names.add(match.group(1))
    for prefix, suffix in re.findall(
        r"\| `(repro\.[a-z0-9_.]+)` / `(\.[a-z0-9_]+)`", text
    ):
        names.add(prefix.rsplit(".", 1)[0] + suffix)
    return names


def test_every_instrumented_metric_is_documented():
    missing = instrumented_names() - documented_names()
    assert not missing, (
        f"metrics instrumented in src/ but absent from {DOCS.name}'s "
        f"table: {sorted(missing)}"
    )


def test_every_documented_metric_exists_in_source():
    stale = documented_names() - instrumented_names()
    assert not stale, (
        f"metrics documented in {DOCS.name} but no longer instrumented "
        f"in src/: {sorted(stale)}"
    )


def test_the_table_is_nonempty_and_parsed():
    # Guard the regexes themselves: a docs reformat that silently parses
    # to zero rows would make both lockstep assertions vacuous.
    assert len(documented_names()) >= 15
    assert len(instrumented_names()) >= 15
