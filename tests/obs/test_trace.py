"""Trace plane unit tests: spans, nesting, export formats, inertness."""

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import _NOOP_SPAN


@pytest.fixture(autouse=True)
def no_leaked_trace():
    """Every test starts and ends with the hooks inert."""
    obs.end_trace()
    yield
    obs.end_trace()


def test_disabled_hooks_are_noops():
    assert obs.current_trace() is None
    assert not obs.enabled()
    handle = obs.span("anything", attr=1)
    assert handle is _NOOP_SPAN  # the shared singleton: zero allocation
    with handle as inner:
        inner.set(more=2)
    assert inner.span_id is None
    assert obs.record_span("x", 0.5) is None
    assert obs.add_span("x", 0.0, 0.5) is None


def test_span_nesting_and_attrs():
    trace = obs.start_trace("t")
    with obs.span("outer", phase="a") as outer:
        with obs.span("inner") as inner:
            inner.set(n=3)
    assert [s.name for s in trace.spans] == ["inner", "outer"]
    by_name = {s.name: s for s in trace.spans}
    assert by_name["inner"].parent_id == outer.span_id
    assert by_name["outer"].parent_id is None
    assert by_name["outer"].attrs["phase"] == "a"
    assert by_name["inner"].attrs["n"] == 3
    assert by_name["outer"].duration >= by_name["inner"].duration


def test_span_records_error_attr():
    trace = obs.start_trace("t")
    with pytest.raises(ValueError):
        with obs.span("boom"):
            raise ValueError("nope")
    (span,) = trace.spans
    assert span.attrs["error"] == "ValueError"


def test_explicit_parent_overrides_stack():
    trace = obs.start_trace("t")
    with obs.span("root") as root:
        pass
    with obs.span("adopted", parent=root.span_id):
        pass
    by_name = {s.name: s for s in trace.spans}
    assert by_name["adopted"].parent_id == root.span_id


def test_track_defaults_to_thread_name():
    trace = obs.start_trace("t")
    with obs.span("main-side"):
        pass
    result = {}

    def body():
        with obs.span("thread-side"):
            pass

    worker = threading.Thread(target=body, name="obs-test-thread")
    worker.start()
    worker.join()
    by_name = {s.name: s for s in trace.spans}
    assert by_name["thread-side"].track == "obs-test-thread"
    assert by_name["main-side"].track == threading.current_thread().name
    assert result == {}


def test_record_span_and_add_span():
    trace = obs.start_trace("t")
    span_id = obs.record_span("measured", 0.25, kind="io")
    child = trace.add_span("sub", 0.1, 0.05, parent_id=span_id, track="w")
    assert span_id is not None and child is not None
    by_name = {s.name: s for s in trace.spans}
    assert by_name["measured"].duration == pytest.approx(0.25)
    assert by_name["sub"].parent_id == span_id
    assert by_name["sub"].track == "w"


def test_coverage_union_of_intervals():
    trace = obs.start_trace("t")
    # Two overlapping spans covering [0, 2] of a 4-unit trace: 50%.
    trace.add_span("a", 0.0, 1.5)
    trace.add_span("b", 1.0, 1.0)
    trace.add_span("end-marker", 4.0, 0.0)
    assert trace.coverage() == pytest.approx(0.5)


def test_shape_is_schema_stable():
    def run_once():
        trace = obs.start_trace("t")
        with obs.span("engine.run"):
            with obs.span("map.task"):
                pass
            with obs.span("map.task"):
                pass
            with obs.span("engine.shuffle"):
                pass
        obs.end_trace()
        return trace.shape()

    first, second = run_once(), run_once()
    assert first == second  # timings differ, the schema must not
    assert ("map.task", "engine.run") in first


def test_to_jsonl_roundtrip(tmp_path):
    trace = obs.start_trace("t")
    with obs.span("a"):
        with obs.span("b"):
            pass
    obs.end_trace()
    path = trace.to_jsonl(tmp_path / "trace.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    header, spans = lines[0], lines[1:]
    assert header["name"] == "t" and header["n_spans"] == 2
    assert sorted(s["name"] for s in spans) == ["a", "b"]
    assert all({"start", "duration", "span_id"} <= set(s) for s in spans)


def test_to_chrome_format(tmp_path):
    trace = obs.start_trace("t")
    with obs.span("a", answer=42):
        pass
    trace.add_report({"job": "J"})
    obs.end_trace()
    path = trace.to_chrome(tmp_path / "trace.json", metrics={"counters": {}})
    document = json.loads(path.read_text())
    events = document["traceEvents"]
    kinds = {e["ph"] for e in events}
    assert kinds == {"M", "X"}
    (x_event,) = [e for e in events if e["ph"] == "X"]
    assert x_event["name"] == "a" and x_event["args"]["answer"] == 42
    assert x_event["dur"] >= 0
    extra = document["repro"]
    assert extra["reports"] == [{"job": "J"}]
    assert extra["metrics"] == {"counters": {}}
    assert 0.0 <= extra["coverage"] <= 1.0


def test_start_trace_replaces_and_end_trace_uninstalls():
    first = obs.start_trace("one")
    second = obs.start_trace("two")
    assert obs.current_trace() is second is not first
    assert obs.end_trace() is second
    assert obs.current_trace() is None
