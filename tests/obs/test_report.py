"""RunReport unit tests: construction, round trip, rendering."""

import pytest

from repro.mapreduce.job import JobStats
from repro.obs import RunReport


def make_stats() -> JobStats:
    stats = JobStats()
    stats.map_task_seconds = [0.2, 0.3]
    stats.reduce_task_seconds = [0.1]
    stats.shuffle_seconds = 0.05
    stats.wall_seconds = 0.9
    stats.n_outputs = 4
    return stats


def test_from_stats_copies_the_right_fields():
    report = RunReport.from_stats(
        make_stats(), job="WordCount", executor="thread", n_workers=4
    )
    assert report.job == "WordCount"
    assert report.executor == "thread"
    assert report.n_workers == 4
    assert report.n_map_tasks == 2 and report.n_reduce_tasks == 1
    assert report.map_seconds == pytest.approx(0.5)
    assert report.reduce_seconds == pytest.approx(0.1)
    assert report.shuffle_seconds == pytest.approx(0.05)
    assert report.wall_seconds == pytest.approx(0.9)
    assert report.n_outputs == 4


def test_derived_properties():
    report = RunReport.from_stats(make_stats(), job="J", executor="serial", n_workers=1)
    assert report.busy_seconds == pytest.approx(0.65)
    assert report.overhead_seconds == pytest.approx(0.25)
    assert report.parallelism == pytest.approx(0.65 / 0.9)
    empty = RunReport()
    assert empty.overhead_seconds == 0.0
    assert empty.parallelism == 0.0


def test_json_roundtrip_filters_unknown_keys():
    report = RunReport.from_stats(
        make_stats(),
        job="J",
        executor="cluster",
        n_workers=2,
        worker_tasks={"w1": 3, "w2": 2},
        retries=1,
        fallback=None,
        bytes_served=2048,
    )
    payload = report.to_json()
    payload["some_future_field"] = "ignored"
    restored = RunReport.from_json(payload)
    assert restored == report


def test_render_mentions_the_load_bearing_numbers():
    report = RunReport.from_stats(
        make_stats(),
        job="RowSum",
        executor="cluster",
        n_workers=2,
        shuffle_overlapped=True,
        worker_tasks={"host0": 3, "host1": 2},
        worker_steals={"host0": 2, "host1": 1},
        retries=1,
        bytes_served=4096,
        n_artifacts=2,
    )
    text = report.render()
    assert "RowSum" in text and "cluster" in text
    assert "host0" in text and "host1" in text
    assert "overlapped" in text
    assert "retries" in text or "retry" in text


def test_render_reports_fallback():
    report = RunReport(job="J", executor="cluster", fallback="no workers joined")
    assert "no workers joined" in report.render()
