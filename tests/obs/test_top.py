"""`repro top` internals: scrape parsing, bucket quantiles, frame render.

Everything here is pure — the network loop is a thin shell around these
functions, and the exporter round-trip is covered by test_export.py and
the CI live-cluster gate.
"""

from repro.obs.export import render_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import (
    parse_prometheus,
    quantile_from_buckets,
    render_frame,
)


SAMPLE = """\
# TYPE repro_cluster_worker_tasks counter
repro_cluster_worker_tasks_total{worker="host0"} 29
repro_cluster_worker_tasks_total{worker="host1"} 23
# TYPE repro_worker_queue_depth gauge
repro_worker_queue_depth{worker="host0"} 4
# TYPE repro_query_seconds histogram
repro_query_seconds_bucket{le="0.1"} 2
repro_query_seconds_bucket{le="1.0"} 5
repro_query_seconds_bucket{le="+Inf"} 6
repro_query_seconds_count 6
repro_query_seconds_sum 3.5
# EOF
"""


class TestParsePrometheus:
    def test_parses_names_labels_and_values(self):
        series = parse_prometheus(SAMPLE)
        assert (
            series[("repro_cluster_worker_tasks_total", (("worker", "host0"),))]
            == 29.0
        )
        assert series[("repro_worker_queue_depth", (("worker", "host0"),))] == 4.0
        assert series[("repro_query_seconds_count", ())] == 6.0

    def test_skips_comments_and_blank_lines(self):
        series = parse_prometheus("# TYPE x counter\n\n# EOF\n")
        assert series == {}

    def test_round_trips_exporter_output(self):
        registry = MetricsRegistry()
        registry.counter("repro.worker.tasks", kind="map").inc(3)
        series = parse_prometheus(render_openmetrics(registry.snapshot()))
        assert series[("repro_worker_tasks_total", (("kind", "map"),))] == 3.0


class TestQuantileFromBuckets:
    def test_picks_the_bucket_reaching_the_rank(self):
        buckets = {("0.1",): 2, ("1.0",): 5, ("+Inf",): 6}
        buckets = [(0.1, 2.0), (1.0, 5.0), (float("inf"), 6.0)]
        # p50 rank = 3 of 6 -> first bound with cumulative >= 3 is 1.0.
        assert quantile_from_buckets(buckets, 0.5) == 1.0
        assert quantile_from_buckets(buckets, 0.1) == 0.1

    def test_empty_buckets_yield_zero(self):
        # Mirrors Histogram.quantile on an empty histogram.
        assert quantile_from_buckets([], 0.5) == 0.0
        assert quantile_from_buckets([(0.1, 0.0)], 0.5) == 0.0


class TestRenderFrame:
    def test_renders_worker_table_and_quantiles(self):
        frame = render_frame(parse_prometheus(SAMPLE), elapsed=12.0)
        assert "host0" in frame and "host1" in frame
        assert "29" in frame and "23" in frame  # per-worker task counts
        assert "4" in frame  # queue depth
        assert "repro_query_seconds" in frame or "query" in frame

    def test_pure_function_no_side_effects(self, capsys):
        render_frame(parse_prometheus(SAMPLE), elapsed=1.0)
        assert capsys.readouterr().out == ""

    def test_empty_series_still_renders_a_header(self):
        frame = render_frame({}, elapsed=0.0)
        assert frame  # never crashes on a scrape with no repro families
