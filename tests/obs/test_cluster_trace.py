"""Cluster tracing: worker spans ship back and re-parent in the driver.

The acceptance bar for the observability subsystem: a traced 2-worker
cluster run produces one driver-side trace whose spans cover (nearly all
of) the measured wall time, include worker-side task spans from *both*
workers re-based onto the driver's clock, and whose embedded run report
renders a per-worker breakdown through ``repro stats``.
"""

import json

import pytest

from repro import obs
from repro.__main__ import main as repro_main
from repro.mapreduce.job import MapReduceJob


@pytest.fixture(autouse=True)
def no_leaked_trace():
    obs.end_trace()
    yield
    obs.end_trace()


# Module scope: cluster workers unpickle the job by reference.
class ClusterGroupSum(MapReduceJob):
    def map(self, key, value):
        yield key % 4, value

    def reduce(self, key, values):
        yield key, sum(values)


INPUTS = [(i, float(i)) for i in range(16)]


def test_cluster_trace_end_to_end(cluster_engine, tmp_path):
    trace = obs.start_trace("cluster-run")
    outputs, stats = cluster_engine.run(ClusterGroupSum(), INPUTS)
    obs.end_trace()
    assert cluster_engine.last_run_fallback is None
    expected = [(k, sum(v for i, v in INPUTS if i % 4 == k)) for k in range(4)]
    assert sorted(outputs) == expected

    run_spans = [s for s in trace.spans if s.name == "cluster.run_job"]
    assert len(run_spans) == 1
    run_span = run_spans[0]

    # Worker-side task spans from BOTH workers, re-parented under the run.
    worker_tracks = {s.track for s in trace.spans if s.track.startswith("worker:")}
    assert len(worker_tracks) == 2
    task_spans = [
        s
        for s in trace.spans
        if s.name in ("map.task", "reduce.task") and s.track.startswith("worker:")
    ]
    assert task_spans
    assert all(s.parent_id == run_span.span_id for s in task_spans)
    task_ids = {s.span_id for s in task_spans}
    compute_spans = [s for s in trace.spans if s.name == "task.compute"]
    assert compute_spans
    assert all(s.parent_id in task_ids for s in compute_spans)
    # Re-based onto the driver clock: inside the run span's interval.
    for span in task_spans:
        assert span.start >= run_span.start - 1e-6
        assert span.start + span.duration <= run_span.start + run_span.duration + 1e-6

    # Spans cover >= 95% of measured wall time.
    assert trace.coverage() >= 0.95

    # The embedded report names both workers; `repro stats` renders it.
    assert trace.reports
    report = cluster_engine.last_run_report
    assert report is not None and report.executor == "cluster"
    assert sum(report.worker_tasks.values()) == len(task_spans)
    assert len(report.worker_tasks) == 2

    out = tmp_path / "trace.json"
    trace.to_chrome(out, metrics=obs.metrics_snapshot())
    document = json.loads(out.read_text())
    assert document["repro"]["reports"] == trace.reports


def test_stats_verb_renders_worker_breakdown(cluster_engine, tmp_path, capsys):
    trace = obs.start_trace("cluster-run")
    cluster_engine.run(ClusterGroupSum(), INPUTS)
    obs.end_trace()
    out = tmp_path / "trace.json"
    trace.to_chrome(out, metrics=obs.metrics_snapshot())

    assert repro_main(["stats", str(out)]) == 0
    text = capsys.readouterr().out
    assert "run report" in text
    assert "cluster" in text
    # Per-worker, per-phase breakdown: both worker tracks with task rows.
    tracks = {s.track for s in trace.spans if s.track.startswith("worker:")}
    for track in sorted(tracks):
        assert track in text
    assert "map.task" in text


def test_untraced_cluster_run_ships_no_spans(cluster_engine):
    assert not obs.enabled()
    outputs, _stats = cluster_engine.run(ClusterGroupSum(), INPUTS)
    assert len(outputs) == 4
    # No trace was active: nothing leaked into a fresh one afterwards.
    trace = obs.start_trace("after")
    obs.end_trace()
    assert trace.spans == []
