"""Histogram.quantile accuracy: property-tested against exact percentiles.

The bucket bounds are quarter-decade log-spaced, so a quantile estimate
can overshoot the exact order statistic by at most one bucket's width —
a factor of 10^0.25.  Values are drawn from the instrumented range
(1 µs .. 10 ks is the bucket span; we stay a decade inside the top so
the overflow bucket's ``max`` fallback is also exercised separately).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import DEFAULT_BUCKET_BOUNDS, Histogram

#: One quarter-decade: the histogram's worst-case relative overshoot.
BUCKET_RATIO = 10.0**0.25


def exact_percentile(values: list[float], q: float) -> float:
    """The order statistic quantile() estimates: ceil(q*n)-th smallest."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered) - 1e-9))
    return ordered[rank - 1]


@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-6, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    q=st.sampled_from([0.5, 0.9, 0.95, 0.99]),
)
def test_quantile_within_one_bucket_of_exact(values, q):
    hist = Histogram("h", ())
    for value in values:
        hist.observe(value)
    estimate = hist.quantile(q)
    exact = exact_percentile(values, q)
    # The reported bound is the upper edge of the bucket holding the
    # exact order statistic: never below it, never more than one
    # quarter-decade above.
    assert estimate >= exact * (1 - 1e-9)
    assert estimate <= exact * BUCKET_RATIO * (1 + 1e-9)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-6, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_quantiles_are_monotone_in_q(values):
    hist = Histogram("h", ())
    for value in values:
        hist.observe(value)
    estimates = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
    assert estimates == sorted(estimates)


def test_overflow_bucket_reports_the_observed_max():
    hist = Histogram("h", ())
    top = DEFAULT_BUCKET_BOUNDS[-1]
    hist.observe(top * 100)
    assert hist.quantile(0.99) == top * 100


def test_empty_histogram_quantile_is_zero():
    assert Histogram("h", ()).quantile(0.5) == 0.0
