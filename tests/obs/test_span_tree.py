"""Span-tree correctness for every local executor + schema stability.

The trace of a run must tell the truth about structure: task spans are
children of the run span under serial, thread *and* process executors
(pool threads have no inherited span stack, so parenting is explicit),
and two identical runs produce the identical span schema — same names,
same parent/child pairs — differing only in timings and ids.
"""

import pytest

from repro import obs
from repro.mapreduce.engine import LocalEngine
from repro.mapreduce.job import MapReduceJob


@pytest.fixture(autouse=True)
def no_leaked_trace():
    obs.end_trace()
    yield
    obs.end_trace()


# Module scope so the job pickles by reference under the process executor.
class GroupSum(MapReduceJob):
    def map(self, key, value):
        yield key % 3, value

    def reduce(self, key, values):
        yield key, sum(values)


INPUTS = [(i, float(i)) for i in range(12)]


def traced_run(executor: str, n_workers: int):
    engine = LocalEngine(n_workers=n_workers, executor=executor, map_chunk_size=3)
    trace = obs.start_trace("run")
    outputs, stats = engine.run(GroupSum(), INPUTS)
    obs.end_trace()
    return trace, outputs, stats, engine


@pytest.mark.parametrize(
    "executor,n_workers",
    [("serial", 1), ("thread", 3), ("process", 2)],
)
def test_task_spans_parent_under_the_run_span(executor, n_workers):
    trace, outputs, stats, engine = traced_run(executor, n_workers)
    run_spans = [s for s in trace.spans if s.name == "engine.run"]
    assert len(run_spans) == 1
    run_span = run_spans[0]
    assert run_span.attrs["executor"] == executor
    assert run_span.attrs["n_outputs"] == len(outputs)

    map_spans = [s for s in trace.spans if s.name == "map.task"]
    reduce_spans = [s for s in trace.spans if s.name == "reduce.task"]
    assert len(map_spans) == len(stats.map_task_seconds) == 4
    assert len(reduce_spans) == len(stats.reduce_task_seconds) == 3
    for span in map_spans + reduce_spans:
        assert span.parent_id == run_span.span_id

    shuffle_spans = [s for s in trace.spans if s.name == "engine.shuffle"]
    assert len(shuffle_spans) == 1
    assert shuffle_spans[0].parent_id == run_span.span_id


@pytest.mark.parametrize("executor,n_workers", [("serial", 1), ("thread", 3)])
def test_schema_stable_across_runs(executor, n_workers):
    first, _, _, _ = traced_run(executor, n_workers)
    second, _, _, _ = traced_run(executor, n_workers)
    assert first.shape() == second.shape()
    # ... while the ids and timings are of course fresh objects.
    assert first.trace_id != second.trace_id


def test_engine_records_wall_seconds_and_report():
    trace, outputs, stats, engine = traced_run("serial", 1)
    assert stats.wall_seconds > 0.0
    assert stats.wall_seconds >= stats.busy_seconds * 0.5  # sanity, not equality
    report = engine.last_run_report
    assert report is not None
    assert report.executor == "serial"
    assert report.n_map_tasks == 4 and report.n_reduce_tasks == 3
    # The trace carries the same report for `repro stats`.
    assert trace.reports and trace.reports[0]["job"] == "GroupSum"


def test_untraced_run_still_builds_report():
    engine = LocalEngine(executor="serial")
    outputs, stats = engine.run(GroupSum(), INPUTS)
    assert engine.last_run_report is not None
    assert engine.last_run_report.n_outputs == len(outputs) == 3
    assert stats.wall_seconds > 0.0
