"""Metrics plane unit tests — including histogram merge determinism."""

import random

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
)


def test_counter_and_gauge_series():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(2)
    registry.counter("hits", worker="w1").inc(5)
    registry.gauge("depth").set(3.5)

    assert registry.counter("hits").value == 3
    assert registry.counter("hits", worker="w1").value == 5
    assert registry.gauge("depth").value == 3.5
    # Same name, different labels -> distinct series, both enumerable.
    values = sorted(c.value for c in registry.counters("hits"))
    assert values == [3, 5]


def test_snapshot_layout():
    registry = MetricsRegistry()
    registry.counter("a.count", site="x").inc()
    registry.gauge("a.depth").set(2)
    registry.histogram("a.seconds").observe(0.01)
    snap = registry.snapshot()
    assert snap["counters"] == {"a.count{site=x}": 1}
    assert snap["gauges"] == {"a.depth": 2}
    hist = snap["histograms"]["a.seconds"]
    assert hist["count"] == 1
    assert hist["mean"] == pytest.approx(0.01)
    # The snapshot is plain JSON: every leaf is a scalar or list.
    import json

    json.dumps(snap)


def test_histogram_statistics():
    hist = Histogram("h", ())
    for value in (0.001, 0.01, 0.1, 1.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.mean == pytest.approx(0.27775)
    assert hist.min == pytest.approx(0.001)
    assert hist.max == pytest.approx(1.0)
    assert hist.quantile(0.5) >= 0.001
    assert hist.quantile(1.0) <= hist.max * 10


def test_histogram_merge_is_order_independent():
    rng = random.Random(7)
    values = [10 ** rng.uniform(-6, 3) for _ in range(500)]

    reference = Histogram("h", ())
    for value in values:
        reference.observe(value)

    # Split across three shards in shuffled order, then merge: bit-equal
    # bucket counts because the bounds are fixed, never data-derived.
    shuffled = list(values)
    random.Random(11).shuffle(shuffled)
    shards = [Histogram("h", ()) for _ in range(3)]
    for index, value in enumerate(shuffled):
        shards[index % 3].observe(value)
    merged = Histogram("h", ())
    for shard in shards:
        merged.merge(shard)

    assert merged.counts == reference.counts
    assert merged.count == reference.count
    assert merged.total == pytest.approx(reference.total)
    assert merged.min == reference.min and merged.max == reference.max


def test_histogram_merge_rejects_different_bounds():
    ours = Histogram("h", ())
    theirs = Histogram("h", (), bounds=(1.0, 2.0, 3.0))
    with pytest.raises(ValueError):
        ours.merge(theirs)


def test_default_bounds_are_fixed_and_sorted():
    assert list(DEFAULT_BUCKET_BOUNDS) == sorted(DEFAULT_BUCKET_BOUNDS)
    assert DEFAULT_BUCKET_BOUNDS[0] <= 1e-6
    assert DEFAULT_BUCKET_BOUNDS[-1] >= 1e4


def test_reset_drops_instruments():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert registry.counter("x").value == 0
