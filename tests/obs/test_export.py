"""HTTP exporter: OpenMetrics rendering and the live /metrics + /healthz.

The exporter is strictly opt-in — the default-off tests at the bottom pin
that no socket exists and no singleton is installed until someone asks.
"""

import json
import urllib.request

import pytest

from repro import obs
from repro.obs.export import (
    MetricsExporter,
    merge_snapshots,
    render_openmetrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.utils.errors import MapReduceError


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestRenderOpenmetrics:
    def test_counter_gets_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("repro.query.count").inc(7)
        text = render_openmetrics(registry.snapshot())
        assert "# TYPE repro_query_count counter\n" in text
        assert "repro_query_count_total 7\n" in text
        assert text.endswith("# EOF\n")

    def test_labels_render_prometheus_style(self):
        registry = MetricsRegistry()
        registry.counter("hits", worker="w0", kind="map").inc()
        text = render_openmetrics(registry.snapshot())
        # Labels come out sorted (kind < worker), values quoted.
        assert 'hits_total{kind="map",worker="w0"} 1\n' in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro.query.seconds")
        for value in (0.0001, 0.001, 0.01):
            hist.observe(value)
        text = render_openmetrics(registry.snapshot())
        assert "# TYPE repro_query_seconds histogram\n" in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 3\n' in text
        assert "repro_query_seconds_count 3\n" in text
        assert "repro_query_seconds_sum " in text
        # Derived quantile gauges ride along as their own families.
        assert "# TYPE repro_query_seconds_p50 gauge\n" in text
        assert "# TYPE repro_query_seconds_p95 gauge\n" in text
        # Buckets are cumulative: the +Inf count equals the total count.
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('repro_query_seconds_bucket{le="')
        ]
        assert buckets == sorted(buckets)

    def test_merge_snapshots_sums_counters_and_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        b.counter("hits").inc(3)
        a.histogram("seconds").observe(0.01)
        b.histogram("seconds").observe(0.1)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["hits"] == 5
        assert merged["histograms"]["seconds"]["count"] == 2


class TestLiveExporter:
    @pytest.fixture()
    def exporter(self):
        exporter = MetricsExporter(port=0)
        yield exporter
        exporter.close()

    def test_metrics_endpoint_serves_openmetrics(self, exporter):
        registry = MetricsRegistry()
        registry.counter("test.hits", site="a").inc(7)
        exporter.add_source(registry.snapshot)
        status, content_type, body = fetch(f"{exporter.url}/metrics")
        assert status == 200
        assert content_type.startswith("application/openmetrics-text")
        text = body.decode()
        assert 'test_hits_total{site="a"} 7\n' in text
        assert text.endswith("# EOF\n")

    def test_healthz_aggregates_sources(self, exporter):
        exporter.add_health("engine:e1", lambda: {"status": "ok", "executor": "x"})
        status, content_type, body = fetch(f"{exporter.url}/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["sources"]["engine:e1"]["executor"] == "x"
        # One degraded source degrades the whole answer.
        exporter.add_health("engine:e2", lambda: {"status": "degraded"})
        _, _, body = fetch(f"{exporter.url}/healthz")
        assert json.loads(body)["status"] == "degraded"

    def test_failing_health_source_is_reported_not_fatal(self, exporter):
        def dying():
            raise RuntimeError("boom")

        exporter.add_health("bad", dying)
        _, _, body = fetch(f"{exporter.url}/healthz")
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["sources"]["bad"]["status"] == "error"

    def test_unknown_path_is_404(self, exporter):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{exporter.url}/nope")
        assert excinfo.value.code == 404

    def test_remove_source_detaches_bound_method(self, exporter):
        registry = MetricsRegistry()
        registry.counter("test.gone").inc()
        exporter.add_source(registry.snapshot)
        exporter.remove_source(registry.snapshot)
        _, _, body = fetch(f"{exporter.url}/metrics")
        assert "test_gone" not in body.decode()


class TestDefaultOff:
    def test_no_exporter_until_asked(self):
        assert obs.active_exporter() is None

    def test_ensure_from_env_is_inert_without_the_variable(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_METRICS_PORT, raising=False)
        assert obs.ensure_from_env() is None

    def test_ensure_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_METRICS_PORT, "not-a-port")
        with pytest.raises(MapReduceError):
            obs.ensure_from_env()

    def test_start_stop_lifecycle_is_idempotent(self):
        try:
            first = obs.start_exporter(0)
            assert obs.start_exporter(0) is first
            assert obs.active_exporter() is first
        finally:
            obs.stop_exporter()
        assert obs.active_exporter() is None
        obs.stop_exporter()  # second stop is a no-op
