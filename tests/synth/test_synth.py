"""Tests for the synthetic city simulation and data generators."""

import numpy as np
import pytest

from repro.spatial.resolution import SpatialResolution
from repro.synth import (
    HURRICANE_WIND,
    CitySimulation,
    SimulationConfig,
    nyc_open_collection,
    nyc_urban_collection,
    simulate_weather,
    taxi_hourly_rate,
)
from repro.synth.collection import URBAN_DATASETS
from repro.utils.errors import DataError


@pytest.fixture(scope="module")
def sim():
    return CitySimulation.generate(SimulationConfig(n_days=60, seed=3, scale=0.3))


class TestConfig:
    def test_validation(self):
        with pytest.raises(DataError):
            SimulationConfig(n_days=0)
        with pytest.raises(DataError):
            SimulationConfig(start=123)  # not hour-aligned
        with pytest.raises(DataError):
            SimulationConfig(scale=0.0)

    def test_hour_grid(self):
        cfg = SimulationConfig(n_days=2)
        assert cfg.n_hours == 48
        ts = cfg.hour_timestamps()
        assert ts.size == 48
        assert (np.diff(ts) == 3600).all()

    def test_monday_start_gives_weekday_zero(self):
        cfg = SimulationConfig()
        assert cfg.day_of_week()[0] == 0


class TestWeather:
    def test_deterministic_given_seed(self):
        cfg = SimulationConfig(n_days=30, seed=5)
        a = simulate_weather(cfg)
        b = simulate_weather(cfg)
        assert np.array_equal(a.wind_speed, b.wind_speed)
        assert np.array_equal(a.precipitation, b.precipitation)

    def test_hurricanes_present_for_long_periods(self, sim):
        assert sim.weather.hurricane_hours.size > 0
        peak = sim.weather.wind_speed[sim.weather.hurricane_hours].max()
        assert peak > HURRICANE_WIND

    def test_snow_depth_nonnegative_and_accumulates(self, sim):
        assert (sim.weather.snow_depth >= 0).all()
        if sim.weather.snow_hours.size:
            h = int(sim.weather.snow_hours[0])
            assert sim.weather.snow_depth[h] > 0

    def test_visibility_bounded(self, sim):
        assert sim.weather.visibility.min() >= 0.2
        assert sim.weather.visibility.max() <= 10.0


class TestPlantedSignals:
    def test_taxi_rate_collapses_during_hurricanes(self, sim):
        rate = taxi_hourly_rate(sim)
        hurricanes = sim.weather.hurricane_hours
        peak = hurricanes[np.argmax(sim.weather.wind_speed[hurricanes])]
        calm = np.setdiff1d(np.arange(sim.config.n_hours), hurricanes)
        same_hour = calm[(calm % 24 == peak % 24) & (sim.holidays[calm] == 1.0)]
        assert rate[peak] < 0.2 * rate[same_hour].mean()

    def test_holidays_suppress_activity(self, sim):
        holiday_hours = sim.holidays < 1.0
        assert holiday_hours.any()
        assert sim.activity[holiday_hours].mean() < sim.activity[~holiday_hours].mean()

    def test_incident_boost_is_local(self, sim):
        inc = sim.incidents[0]
        boost = sim.incident_boost
        assert boost[inc.start_hour, inc.region] > 1.0
        other = (inc.region + 1) % boost.shape[1]
        untouched = all(
            i.region != other
            or not (i.start_hour <= inc.start_hour < i.start_hour + i.duration)
            for i in sim.incidents
        )
        if untouched:
            assert boost[inc.start_hour, other] in (1.0,) or boost[
                inc.start_hour, other
            ] > 1.0  # may coincide with another incident


class TestSampling:
    def test_sample_records_counts_follow_rate(self, sim):
        rng = np.random.default_rng(0)
        rate = np.full(sim.config.n_hours, 20.0)
        ts, x, y, hour_idx = sim.sample_records(rate, rng)
        expected = 20.0 * sim.config.n_hours
        assert abs(ts.size - expected) < 5 * np.sqrt(expected)
        # Records are inside the city extent.
        nbhd = sim.city.region_set(SpatialResolution.NEIGHBORHOOD)
        xmin, ymin, xmax, ymax = nbhd.extent()
        assert (x >= xmin).all() and (x <= xmax).all()
        assert (y >= ymin).all() and (y <= ymax).all()

    def test_timestamps_fall_in_their_hour(self, sim):
        rng = np.random.default_rng(1)
        rate = np.full(sim.config.n_hours, 5.0)
        ts, _, _, hour_idx = sim.sample_records(rate, rng)
        start = sim.config.start
        assert ((ts - start) // 3600 == hour_idx).all()


class TestCollections:
    def test_urban_collection_has_all_datasets(self):
        coll = nyc_urban_collection(seed=1, n_days=14, scale=0.2)
        assert tuple(ds.name for ds in coll.datasets) == URBAN_DATASETS

    def test_urban_collection_deterministic(self):
        a = nyc_urban_collection(seed=2, n_days=10, scale=0.2)
        b = nyc_urban_collection(seed=2, n_days=10, scale=0.2)
        for ds_a, ds_b in zip(a.datasets, b.datasets):
            assert ds_a.n_records == ds_b.n_records
            assert np.array_equal(ds_a.timestamps, ds_b.timestamps)

    def test_subset_selection(self):
        coll = nyc_urban_collection(seed=1, n_days=10, scale=0.2, subset=("taxi",))
        assert [ds.name for ds in coll.datasets] == ["taxi"]
        with pytest.raises(KeyError):
            coll.dataset("weather")

    def test_scale_controls_volume(self):
        small = nyc_urban_collection(seed=3, n_days=10, scale=0.1)
        large = nyc_urban_collection(seed=3, n_days=10, scale=0.5)
        assert large.dataset("taxi").n_records > small.dataset("taxi").n_records

    def test_open_collection_shapes(self):
        coll = nyc_open_collection(n_datasets=8, seed=4, n_days=21)
        assert len(coll.datasets) == 8
        for ds in coll.datasets:
            assert ds.n_records > 0
            assert ds.schema.spatial_resolution in (
                SpatialResolution.ZIP,
                SpatialResolution.CITY,
            )

    def test_open_collection_zip_records_resolve(self):
        coll = nyc_open_collection(n_datasets=10, seed=5, n_days=14)
        zips = coll.city.region_set(SpatialResolution.ZIP)
        for ds in coll.datasets:
            if ds.schema.spatial_resolution is SpatialResolution.ZIP:
                idx = zips.indices_of(ds.regions)
                assert (idx >= 0).all()

    def test_weather_extra_attributes(self):
        coll = nyc_urban_collection(
            seed=1,
            n_days=7,
            scale=0.2,
            subset=("weather",),
            weather_extra_attributes=5,
        )
        weather = coll.dataset("weather")
        assert weather.schema.n_scalar_functions == 1 + 8 + 5
